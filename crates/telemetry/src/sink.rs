//! Event sinks: an append-only JSONL log and Prometheus-style text
//! exposition.
//!
//! The JSONL sink writes one complete JSON object per line. Each line is
//! formatted into a private buffer first and handed to the writer as a
//! single `write_all` under the sink mutex, so concurrent writers can never
//! interleave partial lines — every line in the file parses on its own.

use crate::sync::Mutex;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Write as _};
use std::path::Path;

/// A typed event field value.
///
/// Floats are rendered shortest-round-trip (like `serde_json`); non-finite
/// floats become JSON `null` since JSON has no NaN/∞ literals.
#[derive(Debug, Clone, Copy)]
pub enum Field<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (non-finite renders as `null`).
    F64(f64),
    /// String (JSON-escaped on write).
    Str(&'a str),
    /// Boolean.
    Bool(bool),
}

/// Appends `v` to `out` as a JSON value.
fn write_json_value(out: &mut String, v: &Field<'_>) {
    match *v {
        Field::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Field::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Field::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest round-trip float form; force a
                // decimal point so the value re-parses as a float.
                let mut s = format!("{x:?}");
                if !s.contains(['.', 'e', 'E']) {
                    s.push_str(".0");
                }
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Field::Str(s) => write_json_string(out, s),
        Field::Bool(b) => out.push_str(if b { "true" } else { "false" }),
    }
}

/// Appends `s` to `out` as a JSON string literal with minimal escaping.
fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats one event as a single JSON line (without the trailing newline).
///
/// The line always leads with `"type"` and a monotone `"seq"` so readers can
/// demultiplex and order events without trusting file offsets.
pub(crate) fn format_event_line(kind: &str, seq: u64, fields: &[(&str, Field<'_>)]) -> String {
    let mut line = String::with_capacity(64 + fields.len() * 24);
    line.push_str("{\"type\":");
    write_json_string(&mut line, kind);
    let _ = write!(line, ",\"seq\":{seq}");
    for (key, value) in fields {
        line.push(',');
        write_json_string(&mut line, key);
        line.push(':');
        write_json_value(&mut line, value);
    }
    line.push('}');
    line
}

/// An append-only JSONL event log.
#[derive(Debug)]
pub(crate) struct JsonlSink {
    writer: BufWriter<File>,
}

impl JsonlSink {
    /// Opens (and creates or appends to) the log at `path`, creating parent
    /// directories as needed.
    pub(crate) fn open(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink { writer: BufWriter::new(file) })
    }

    /// Writes one pre-formatted line atomically (single `write_all` of the
    /// full line including its newline).
    pub(crate) fn write_line(&mut self, line: &str) -> io::Result<()> {
        let mut buf = Vec::with_capacity(line.len() + 1);
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
        self.writer.write_all(&buf)
    }

    /// Flushes buffered lines to the OS.
    pub(crate) fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }
}

/// A mutex-guarded optional sink, shared by all clones of a handle.
pub(crate) type SharedSink = Mutex<Option<JsonlSink>>;

/// Renders a float for Prometheus text exposition.
pub(crate) fn prom_float(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_owned()
    } else if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else {
        let mut s = format!("{v:?}");
        if !s.contains(['.', 'e', 'E']) {
            s.push_str(".0");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_line_escapes_and_orders() {
        let line = format_event_line(
            "round",
            3,
            &[("name", Field::Str("a\"b\n")), ("x", Field::F64(0.1)), ("ok", Field::Bool(true))],
        );
        assert_eq!(
            line,
            "{\"type\":\"round\",\"seq\":3,\"name\":\"a\\\"b\\n\",\"x\":0.1,\"ok\":true}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let line = format_event_line("e", 0, &[("bad", Field::F64(f64::NAN))]);
        assert!(line.contains("\"bad\":null"));
    }

    #[test]
    fn prom_float_round_trips() {
        assert_eq!(prom_float(0.1), "0.1");
        assert_eq!(prom_float(2.0), "2.0");
        assert_eq!(prom_float(f64::INFINITY), "+Inf");
    }
}
