//! Lock-free metric primitives: [`Counter`], [`Gauge`], and fixed-bucket
//! [`Histogram`].
//!
//! All three are plain atomics — recording never takes a lock and never
//! allocates, so instrumented hot paths stay cheap even with telemetry on.
//! Registration (name → handle lookup) is the only locked operation and is
//! expected to happen once at setup time, with the `Arc` handle cached by
//! the instrumented component.

use crate::sync::{AtomicU64, Ordering};

/// A monotonically non-decreasing `u64` counter.
///
/// Increments saturate at `u64::MAX` instead of wrapping, so a counter can
/// never appear to go backwards no matter how long the process runs.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        Counter { value: AtomicU64::new(0) }
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`, saturating at `u64::MAX`.
    pub fn add(&self, n: u64) {
        // `fetch_update` with a closure that always returns `Some` cannot
        // fail; the result is ignored rather than unwrapped.
        let _ = self
            .value
            // ordering: standalone monotonic tally — readers only ever
            // render its value, no other memory is gated on it.
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_add(n)));
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed) // ordering: standalone tally (see add)
    }
}

/// A last-write-wins `f64` gauge (stored as raw bits in an `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// Creates a gauge holding `0.0`.
    pub const fn new() -> Self {
        Gauge { bits: AtomicU64::new(0) }
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        // ordering: last-write-wins sample; each store/load is a complete
        // value, nothing else is published through it.
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed)) // ordering: see set
    }
}

/// A fixed-bucket histogram with Prometheus `le` (less-or-equal) semantics.
///
/// Bucket `i` counts observations `v <= bounds[i]`; one extra overflow
/// bucket counts everything above the last bound (`+Inf`). Counts and the
/// running sum are atomics, so concurrent `observe` calls from many threads
/// lose nothing: the final `count` and per-bucket totals are exact.
///
/// Non-finite observations (NaN, ±∞) land in the overflow bucket and
/// contribute `0.0` to the sum so a single bad sample cannot poison it.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

/// A point-in-time copy of a histogram's state, for tests and reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Finite upper bounds, ascending; the implicit `+Inf` bucket is last.
    pub bounds: Vec<f64>,
    /// Per-bucket (non-cumulative) counts; `buckets.len() == bounds.len() + 1`.
    pub buckets: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of all finite observations.
    pub sum: f64,
}

impl Histogram {
    /// Creates a histogram from ascending finite upper bounds.
    ///
    /// Non-finite, unsorted, or duplicate bounds are dropped (the remaining
    /// prefix of strictly-ascending finite bounds is kept), so construction
    /// never fails; an empty bound list leaves only the overflow bucket.
    pub fn new(bounds: &[f64]) -> Self {
        let mut clean: Vec<f64> = Vec::with_capacity(bounds.len());
        for &b in bounds {
            if b.is_finite() && clean.last().is_none_or(|&last| b > last) {
                clean.push(b);
            }
        }
        let buckets = (0..=clean.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds: clean,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = if v.is_finite() {
            // First bucket whose bound satisfies `v <= bound`.
            self.bounds.partition_point(|&b| b < v)
        } else {
            self.bounds.len() // overflow bucket
        };
        // ordering: independent tallies; a reader may see bucket/count/sum
        // at slightly different points, which snapshot consumers tolerate
        // (each individual tally is still exact — see the loom suite).
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed); // ordering: see above
        let add = if v.is_finite() { v } else { 0.0 };
        let mut cur = self.sum_bits.load(Ordering::Relaxed); // ordering: see above
        loop {
            let next = (f64::from_bits(cur) + add).to_bits();
            // ordering: CAS retry loop on the sum alone; exactness comes
            // from the CAS, not from ordering with other fields.
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed, // ordering: see above
                Ordering::Relaxed, // ordering: see above
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // ordering: tally read (see observe)
    }

    /// Sum of all finite observations.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed)) // ordering: tally read (see observe)
    }

    /// Copies out the full state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(), // ordering: tally read (see observe)
            count: self.count(),
            sum: self.sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn histogram_drops_bad_bounds() {
        let h = Histogram::new(&[1.0, f64::NAN, 0.5, 1.0, 2.0]);
        // NaN, the out-of-order 0.5, and the duplicate 1.0 are dropped.
        assert_eq!(h.snapshot().bounds, vec![1.0, 2.0]);
    }
}
