//! Prometheus text-exposition hardening: metric/label name validation,
//! label-value escaping, and the typed [`ExpositionError`].
//!
//! Metric names reach the registry as `&str`, so byte sequences that are
//! not UTF-8 are unrepresentable by construction; what *can* still corrupt
//! an exposition page are names outside the Prometheus charset (spaces,
//! quotes, arbitrary unicode) and label values containing `\`, `"`, or
//! newlines. This module rejects the former with a typed error and escapes
//! the latter per the exposition-format spec.

use std::fmt;

/// Why an exposition page could not be rendered faithfully.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpositionError {
    /// A registered metric name is outside `[a-zA-Z_:][a-zA-Z0-9_:]*`
    /// (this also covers names that only *look* textual — anything not
    /// valid UTF-8 cannot even be registered, since names are `&str`).
    InvalidMetricName(String),
    /// A label key is outside `[a-zA-Z_][a-zA-Z0-9_]*` or collides with
    /// the reserved histogram label `le`.
    InvalidLabelName {
        /// The metric the bad label was registered on.
        metric: String,
        /// The offending label key.
        label: String,
    },
}

impl fmt::Display for ExpositionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExpositionError::InvalidMetricName(name) => {
                write!(f, "invalid Prometheus metric name {name:?}")
            }
            ExpositionError::InvalidLabelName { metric, label } => {
                write!(f, "invalid Prometheus label name {label:?} on metric {metric:?}")
            }
        }
    }
}

impl std::error::Error for ExpositionError {}

/// Whether `name` is a valid Prometheus metric name:
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`.
#[must_use]
pub fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else { return false };
    if !(first.is_ascii_alphabetic() || first == '_' || first == ':') {
        return false;
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Whether `name` is a valid Prometheus label name:
/// `[a-zA-Z_][a-zA-Z0-9_]*`, excluding the reserved `le`.
#[must_use]
pub fn valid_label_name(name: &str) -> bool {
    if name == "le" {
        return false;
    }
    let mut chars = name.chars();
    let Some(first) = chars.next() else { return false };
    if !(first.is_ascii_alphabetic() || first == '_') {
        return false;
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escapes a label value for the text exposition format: `\` becomes
/// `\\`, `"` becomes `\"`, and a line feed becomes `\n`. Everything else
/// (including other unicode) passes through unchanged per the spec.
#[must_use]
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A registry key: a base metric name plus its (sorted) label pairs.
///
/// Two series of the same metric with different labels are distinct
/// entries that render under one shared `# TYPE` header.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Base metric name (validated at exposition time, not registration,
    /// so registration can stay infallible on hot paths).
    pub name: String,
    /// Label pairs, sorted by key for a canonical identity.
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// A key with no labels.
    #[must_use]
    pub fn bare(name: &str) -> Self {
        MetricKey { name: name.to_owned(), labels: Vec::new() }
    }

    /// A key with labels; pairs are sorted by key so registration order
    /// does not create duplicate series.
    #[must_use]
    pub fn labeled(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut pairs: Vec<(String, String)> =
            labels.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect();
        pairs.sort();
        MetricKey { name: name.to_owned(), labels: pairs }
    }

    /// Validates the name and every label key.
    pub fn validate(&self) -> Result<(), ExpositionError> {
        if !valid_metric_name(&self.name) {
            return Err(ExpositionError::InvalidMetricName(self.name.clone()));
        }
        for (k, _) in &self.labels {
            if !valid_label_name(k) {
                return Err(ExpositionError::InvalidLabelName {
                    metric: self.name.clone(),
                    label: k.clone(),
                });
            }
        }
        Ok(())
    }

    /// Renders the label block (`{k="v",...}`), with values escaped;
    /// `extra` appends one more pre-rendered pair (used for `le`).
    /// Returns an empty string when there are no labels at all.
    #[must_use]
    pub fn label_block(&self, extra: Option<(&str, &str)>) -> String {
        if self.labels.is_empty() && extra.is_none() {
            return String::new();
        }
        let mut out = String::from("{");
        let mut first = true;
        for (k, v) in &self.labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        if let Some((k, v)) = extra {
            if !first {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label_value(v));
            out.push('"');
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_charset() {
        assert!(valid_metric_name("vc_serve:requests_total"));
        assert!(valid_metric_name("_x9"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("9x"));
        assert!(!valid_metric_name("a b"));
        assert!(!valid_metric_name("naïve"));
        assert!(!valid_metric_name("a\"b"));
    }

    #[test]
    fn label_charset_excludes_le() {
        assert!(valid_label_name("shard"));
        assert!(!valid_label_name("le"));
        assert!(!valid_label_name("1st"));
        assert!(!valid_label_name("a:b"));
    }

    #[test]
    fn escaping_matches_spec() {
        assert_eq!(escape_label_value("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
        assert_eq!(escape_label_value("plain ünicode"), "plain ünicode");
    }

    #[test]
    fn label_block_renders_sorted_and_escaped() {
        let key = MetricKey::labeled("m", &[("z", "1"), ("a", "x\ny")]);
        assert_eq!(key.label_block(None), "{a=\"x\\ny\",z=\"1\"}");
        assert_eq!(key.label_block(Some(("le", "0.5"))), "{a=\"x\\ny\",z=\"1\",le=\"0.5\"}");
        assert_eq!(MetricKey::bare("m").label_block(None), "");
        assert_eq!(MetricKey::bare("m").label_block(Some(("le", "+Inf"))), "{le=\"+Inf\"}");
    }

    #[test]
    fn validate_reports_typed_errors() {
        assert_eq!(
            MetricKey::bare("bad name").validate(),
            Err(ExpositionError::InvalidMetricName("bad name".to_owned()))
        );
        assert_eq!(
            MetricKey::labeled("m", &[("le", "x")]).validate(),
            Err(ExpositionError::InvalidLabelName {
                metric: "m".to_owned(),
                label: "le".to_owned()
            })
        );
        assert!(MetricKey::labeled("m", &[("ok", "v")]).validate().is_ok());
    }
}
