//! Synchronization facade: `parking_lot`/std normally, `loom` models under
//! `--cfg loom`.
//!
//! The registry ([`crate::Telemetry`]), metrics, and sink import their
//! primitives from here. Ordinary builds re-export the `parking_lot` mutex
//! and std atomics unchanged — zero wrappers on the hot path. Under
//! `RUSTFLAGS="--cfg loom"` the same names resolve to model-aware types so
//! `tests/loom_registry.rs` can exhaustively check the registration and
//! recording protocols. See `DESIGN.md` §13.

#[cfg(not(loom))]
pub use parking_lot::Mutex;
#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A `parking_lot`-shaped (guard-returning, poison-free) facade over the
/// loom model mutex.
#[cfg(loom)]
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: loom::sync::Mutex<T>,
}

#[cfg(loom)]
impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex { inner: loom::sync::Mutex::new(value) }
    }

    /// Acquires the mutex, returning the guard directly (a scheduling
    /// point explored by the model; the shim never poisons).
    pub fn lock(&self) -> loom::sync::MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(e) => e.into_inner(),
        }
    }
}
