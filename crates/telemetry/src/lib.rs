//! `vc_telemetry`: a lock-light observability layer for the DRL-CEWS
//! training stack.
//!
//! The crate provides three metric primitives — [`Counter`], [`Gauge`], and
//! fixed-bucket [`Histogram`] — behind a cloneable [`Telemetry`] handle,
//! plus a span/event API with two sinks:
//!
//! - an append-only **JSONL event log** ([`Telemetry::attach_jsonl`]): one
//!   self-contained JSON object per line, written line-atomically;
//! - a **Prometheus-style text dump** ([`Telemetry::prometheus`] /
//!   [`Telemetry::write_prometheus`]) of every registered metric.
//!
//! # Overhead policy
//!
//! A disabled handle ([`Telemetry::off`], the default) costs one relaxed
//! atomic load per instrumentation site: [`Telemetry::is_on`] is the only
//! thing hot paths check before doing any metric work. Recording itself is
//! lock-free (plain atomics); the registry lock is touched only at
//! registration time, and instrumented components cache the returned `Arc`
//! handles. Event emission takes the sink mutex but happens at round /
//! episode granularity, never inside kernels.
//!
//! ```
//! use vc_telemetry::{Field, Telemetry};
//!
//! let t = Telemetry::new();
//! let rounds = t.counter("chief_rounds_total");
//! rounds.inc();
//! t.event("round", &[("round", Field::U64(0)), ("gather_ms", Field::F64(1.25))]);
//! assert!(t.prometheus().contains("chief_rounds_total 1"));
//! ```

pub mod expo;
pub mod metrics;
pub mod sink;
/// Sync primitive facade: `parking_lot`/std normally, `loom` under
/// `--cfg loom`.
pub mod sync;

pub use expo::{escape_label_value, ExpositionError, MetricKey};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use sink::Field;

use sink::{prom_float, JsonlSink, SharedSink};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;
use sync::{AtomicBool, AtomicU64, Mutex, Ordering};

/// Default span-duration bucket bounds, in seconds (~100µs .. 30s).
pub const SPAN_SECONDS_BOUNDS: [f64; 10] =
    [1e-4, 5e-4, 2e-3, 1e-2, 5e-2, 0.2, 1.0, 5.0, 15.0, 30.0];

/// Registry state shared by every clone of a [`Telemetry`] handle.
struct Shared {
    enabled: AtomicBool,
    seq: AtomicU64,
    counters: Mutex<BTreeMap<MetricKey, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<MetricKey, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<MetricKey, Arc<Histogram>>>,
    sink: SharedSink,
}

/// A cloneable handle to a metrics registry and its sinks.
///
/// All clones share one registry, one enabled flag, and one JSONL sink.
/// Embed it wherever instrumentation is needed; a handle from
/// [`Telemetry::off`] keeps every operation a cheap no-op.
#[derive(Clone)]
pub struct Telemetry {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.is_on()).finish()
    }
}

impl Default for Telemetry {
    /// Equivalent to [`Telemetry::off`].
    fn default() -> Self {
        Telemetry::off()
    }
}

impl Telemetry {
    fn with_enabled(enabled: bool) -> Self {
        Telemetry {
            shared: Arc::new(Shared {
                enabled: AtomicBool::new(enabled),
                seq: AtomicU64::new(0),
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                sink: Mutex::new(None),
            }),
        }
    }

    /// An enabled registry with no sinks attached yet.
    #[must_use]
    pub fn new() -> Self {
        Telemetry::with_enabled(true)
    }

    /// A disabled registry: every recording operation is a no-op after one
    /// relaxed atomic load.
    #[must_use]
    pub fn off() -> Self {
        Telemetry::with_enabled(false)
    }

    /// Whether recording is enabled — the one check hot paths make.
    #[inline]
    pub fn is_on(&self) -> bool {
        // ordering: standalone on/off flag — a record racing the toggle
        // may or may not be kept, both acceptable; no other memory is
        // published through it (handles travel via Arc/the registry lock).
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Enables or disables recording on all clones of this handle.
    pub fn set_on(&self, on: bool) {
        self.shared.enabled.store(on, Ordering::Relaxed); // ordering: see is_on
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Cache the returned `Arc` rather than re-looking-up per record.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_labeled(name, &[])
    }

    /// Returns the counter series `name{labels}`, creating it on first
    /// use. Label pairs are sorted internally, so registration order does
    /// not fork duplicate series; label *values* may hold any UTF-8 and
    /// are escaped at exposition time.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::labeled(name, labels);
        let mut map = self.shared.counters.lock();
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(Counter::new())))
    }

    /// Returns the gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_labeled(name, &[])
    }

    /// Returns the gauge series `name{labels}`, creating it on first use.
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::labeled(name, labels);
        let mut map = self.shared.gauges.lock();
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(Gauge::new())))
    }

    /// Returns the histogram registered under `name`, creating it with the
    /// given bucket bounds on first use (later calls keep the first bounds).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_labeled(name, &[], bounds)
    }

    /// Returns the histogram series `name{labels}`, creating it with
    /// `bounds` on first use (later calls keep the first bounds).
    pub fn histogram_labeled(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Arc<Histogram> {
        let key = MetricKey::labeled(name, labels);
        let mut map = self.shared.histograms.lock();
        Arc::clone(map.entry(key).or_insert_with(|| Arc::new(Histogram::new(bounds))))
    }

    /// Attaches (or replaces) the JSONL event sink, appending to `path`.
    pub fn attach_jsonl(&self, path: &Path) -> io::Result<()> {
        let sink = JsonlSink::open(path)?;
        *self.shared.sink.lock() = Some(sink);
        Ok(())
    }

    /// Emits one event line to the JSONL sink.
    ///
    /// No-op when disabled or when no sink is attached. The line carries
    /// `"type"` and a process-wide monotone `"seq"` before the caller's
    /// fields, and is written as a single `write_all` so concurrent events
    /// never interleave. Sink I/O errors are swallowed: telemetry must
    /// never fail training.
    pub fn event(&self, kind: &str, fields: &[(&str, Field<'_>)]) {
        if !self.is_on() {
            return;
        }
        let mut guard = self.shared.sink.lock();
        let Some(sink) = guard.as_mut() else { return };
        // ordering: always executed under the sink lock, which already
        // serializes emitters; the atomic only makes `seq` safe to move
        // out from under the lock later.
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed);
        let line = sink::format_event_line(kind, seq, fields);
        let _ = sink.write_line(&line);
    }

    /// Flushes the JSONL sink (if any) to the OS.
    pub fn flush(&self) -> io::Result<()> {
        if let Some(sink) = self.shared.sink.lock().as_mut() {
            sink.flush()?;
        }
        Ok(())
    }

    /// Starts a duration span that records elapsed seconds into the
    /// histogram `name` (with [`SPAN_SECONDS_BOUNDS`]) when dropped or
    /// [`finish`](Span::finish)ed. Returns an inert span when disabled.
    #[must_use]
    pub fn span(&self, name: &str) -> Span {
        if !self.is_on() {
            return Span { hist: None, start: Instant::now() };
        }
        Span { hist: Some(self.histogram(name, &SPAN_SECONDS_BOUNDS)), start: Instant::now() }
    }

    /// Renders every registered metric in Prometheus text exposition
    /// format, names sorted, histograms with cumulative `le` buckets.
    ///
    /// Infallible variant of [`Telemetry::try_prometheus`]: series whose
    /// metric or label names fail validation are *skipped* (with an
    /// explanatory `#` comment) rather than emitted malformed, so the page
    /// always parses.
    #[must_use]
    pub fn prometheus(&self) -> String {
        self.render_prometheus(false).unwrap_or_default()
    }

    /// Renders the exposition page, failing with a typed
    /// [`ExpositionError`] if any registered metric or label name is
    /// outside the Prometheus charset — nothing malformed is ever
    /// returned. (Names are `&str`, so non-UTF-8 is unrepresentable; this
    /// catches the remaining ways a name can corrupt the page.)
    pub fn try_prometheus(&self) -> Result<String, ExpositionError> {
        // `strict` guarantees `render_prometheus` only returns `Err`.
        self.render_prometheus(true)
    }

    /// Shared renderer: in strict mode the first invalid name aborts with
    /// its typed error; otherwise invalid series degrade to a comment.
    fn render_prometheus(&self, strict: bool) -> Result<String, ExpositionError> {
        let mut out = String::new();
        let skip = |out: &mut String, err: ExpositionError| -> Result<(), ExpositionError> {
            if strict {
                return Err(err);
            }
            let _ = writeln!(out, "# skipped series: {}", err.to_string().replace('\n', " "));
            Ok(())
        };
        let mut last_type: Option<String> = None;
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            if last_type.as_deref() != Some(name) {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_type = Some(name.to_owned());
            }
        };
        for (key, c) in self.shared.counters.lock().iter() {
            if let Err(err) = key.validate() {
                skip(&mut out, err)?;
                continue;
            }
            type_line(&mut out, &key.name, "counter");
            let _ = writeln!(out, "{}{} {}", key.name, key.label_block(None), c.get());
        }
        for (key, g) in self.shared.gauges.lock().iter() {
            if let Err(err) = key.validate() {
                skip(&mut out, err)?;
                continue;
            }
            type_line(&mut out, &key.name, "gauge");
            let _ = writeln!(out, "{}{} {}", key.name, key.label_block(None), prom_float(g.get()));
        }
        for (key, h) in self.shared.histograms.lock().iter() {
            if let Err(err) = key.validate() {
                skip(&mut out, err)?;
                continue;
            }
            let snap = h.snapshot();
            type_line(&mut out, &key.name, "histogram");
            let mut cumulative = 0u64;
            for (i, bucket) in snap.buckets.iter().enumerate() {
                cumulative += bucket;
                let le = snap.bounds.get(i).map_or_else(|| "+Inf".to_owned(), |b| prom_float(*b));
                let _ = writeln!(
                    out,
                    "{}_bucket{} {cumulative}",
                    key.name,
                    key.label_block(Some(("le", &le)))
                );
            }
            let _ =
                writeln!(out, "{}_sum{} {}", key.name, key.label_block(None), prom_float(snap.sum));
            let _ = writeln!(out, "{}_count{} {}", key.name, key.label_block(None), snap.count);
        }
        Ok(out)
    }

    /// Writes [`Telemetry::prometheus`] output to `path`, creating parent
    /// directories as needed.
    pub fn write_prometheus(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, self.prometheus())
    }
}

/// A timing guard from [`Telemetry::span`]; records elapsed seconds into
/// its histogram on drop.
#[derive(Debug)]
pub struct Span {
    hist: Option<Arc<Histogram>>,
    start: Instant,
}

impl Span {
    /// Ends the span now, recording its duration; equivalent to dropping.
    pub fn finish(self) {}

    /// Seconds elapsed since the span started.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(h) = self.hist.take() {
            h.observe(self.start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn registry_returns_shared_handles() {
        let t = Telemetry::new();
        t.counter("a").add(2);
        t.counter("a").inc();
        assert_eq!(t.counter("a").get(), 3);
        let clone = t.clone();
        clone.counter("a").inc();
        assert_eq!(t.counter("a").get(), 4);
    }

    #[test]
    fn prometheus_renders_all_kinds() {
        let t = Telemetry::new();
        t.counter("c_total").inc();
        t.gauge("g").set(1.5);
        t.histogram("h", &[1.0, 2.0]).observe(1.5);
        let text = t.prometheus();
        assert!(text.contains("# TYPE c_total counter\nc_total 1\n"));
        assert!(text.contains("# TYPE g gauge\ng 1.5\n"));
        assert!(text.contains("h_bucket{le=\"1.0\"} 0"));
        assert!(text.contains("h_bucket{le=\"2.0\"} 1"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("h_count 1"));
    }

    #[test]
    fn labeled_series_escape_and_share_type_header() {
        let t = Telemetry::new();
        t.counter_labeled("req_total", &[("peer", "a\\b\"c\nd")]).inc();
        t.counter_labeled("req_total", &[("peer", "plain")]).add(2);
        let text = t.try_prometheus().unwrap();
        assert_eq!(text.matches("# TYPE req_total counter").count(), 1);
        assert!(text.contains("req_total{peer=\"a\\\\b\\\"c\\nd\"} 1"));
        assert!(text.contains("req_total{peer=\"plain\"} 2"));
        // Labeled histograms keep their own labels alongside `le`.
        t.histogram_labeled("lat", &[("mode", "x")], &[1.0]).observe(0.5);
        let text = t.try_prometheus().unwrap();
        assert!(text.contains("lat_bucket{mode=\"x\",le=\"1.0\"} 1"));
        assert!(text.contains("lat_sum{mode=\"x\"} 0.5"));
    }

    #[test]
    fn invalid_names_fail_typed_and_never_emit_malformed() {
        let t = Telemetry::new();
        t.counter("ok_total").inc();
        t.counter("bad name").inc();
        assert_eq!(
            t.try_prometheus(),
            Err(ExpositionError::InvalidMetricName("bad name".to_owned()))
        );
        // The infallible page skips the bad series but stays parseable.
        let page = t.prometheus();
        assert!(page.contains("ok_total 1"));
        // The offending name appears only inside the `#` comment, never as
        // a sample line, so every non-comment line stays well-formed.
        assert!(!page.lines().any(|l| !l.starts_with('#') && l.contains("bad name")));
        assert!(page.contains("# skipped series"));
        // Reserved `le` label key is rejected too.
        let t2 = Telemetry::new();
        t2.gauge_labeled("g", &[("le", "boom")]).set(1.0);
        assert!(matches!(t2.try_prometheus(), Err(ExpositionError::InvalidLabelName { .. })));
    }

    #[test]
    fn span_records_into_histogram() {
        let t = Telemetry::new();
        t.span("phase_seconds").finish();
        assert_eq!(t.histogram("phase_seconds", &SPAN_SECONDS_BOUNDS).count(), 1);
    }

    #[test]
    fn disabled_span_records_nothing() {
        let t = Telemetry::off();
        t.span("phase_seconds").finish();
        assert_eq!(t.histogram("phase_seconds", &SPAN_SECONDS_BOUNDS).count(), 0);
    }
}
