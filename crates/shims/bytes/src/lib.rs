//! Offline stand-in for the `bytes` crate (see `DESIGN.md`, "Offline
//! dependency shims"): [`Bytes`], [`BytesMut`] and the [`Buf`]/[`BufMut`]
//! cursor traits, covering the little-endian checkpoint wire format in
//! `vc-nn::serialize`.

use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: Arc::new(data.to_vec()) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data: Arc::new(data) }
    }
}

/// A growable byte buffer with little-endian put methods.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write cursor over a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read cursor over a byte source. Reading past the end panics, exactly as
/// in the real `bytes` crate — callers bound-check with [`Buf::remaining`].
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow: {} > {}", dst.len(), self.len());
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::{Buf, BufMut, BytesMut};

    #[test]
    fn le_roundtrip_through_freeze() {
        let mut w = BytesMut::with_capacity(16);
        w.put_u8(7);
        w.put_u32_le(0xDEAD_BEEF);
        w.put_f32_le(1.5);
        w.put_slice(b"xy");
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 11);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f32_le(), 1.5);
        let mut tail = [0u8; 2];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn reading_past_end_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32_le();
    }
}
