//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the offline serde
//! shim.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are
//! unavailable; the item is parsed directly from `proc_macro` token trees.
//! Supported shapes — the full set this workspace derives on:
//!
//! * structs with named fields (serde map encoding);
//! * tuple structs (newtype-transparent for arity 1, array otherwise);
//! * unit structs;
//! * enums with unit, named-field and tuple variants (externally tagged).
//!
//! Generics and serde field attributes are *not* supported; the macro
//! panics with a clear message so the compile error points at the item.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Input {
    name: String,
    kind: Kind,
}

/// Derives `serde::Serialize` (shim edition).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().unwrap_or_else(|e| {
        panic!("serde shim derive produced invalid Serialize impl for {}: {e}", item.name)
    })
}

/// Derives `serde::Deserialize` (shim edition).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().unwrap_or_else(|e| {
        panic!("serde shim derive produced invalid Deserialize impl for {}: {e}", item.name)
    })
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);

    let item_kw = expect_ident(&toks, &mut i);
    let name = expect_ident(&toks, &mut i);
    if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde shim derive does not support generic type `{name}`");
    }

    let kind = match item_kw.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde shim derive: unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde shim derive: unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde shim derive supports structs and enums, got `{other}`"),
    };
    Input { name, kind }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            // `#[...]` — skip the pound and the bracket group.
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` / `pub(in ...)`.
                if matches!(toks.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde shim derive: expected identifier, found {other:?}"),
    }
}

/// Consumes tokens of one type, stopping at a comma outside angle brackets.
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        fields.push(expect_ident(&toks, &mut i));
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde shim derive: expected `:` after field, found {other:?}"),
        }
        skip_type(&toks, &mut i);
        // Trailing comma between fields.
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        count += 1;
        skip_type(&toks, &mut i);
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i);
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Skip an explicit discriminant (`= expr`) if present.
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            i += 1;
            skip_type(&toks, &mut i);
        }
        if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec::Vec::from([{}]))", entries.join(", "))
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|k| format!("::serde::Serialize::to_value(&self.{k})")).collect();
            format!("::serde::Value::Seq(::std::vec::Vec::from([{}]))", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants.iter().map(|v| ser_variant_arm(name, v)).collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn ser_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.kind {
        VariantKind::Unit => format!(
            "{enum_name}::{vname} => ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
        ),
        VariantKind::Named(fields) => {
            let bindings = fields.join(", ");
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                    )
                })
                .collect();
            format!(
                "{enum_name}::{vname} {{ {bindings} }} => ::serde::Value::Map(::std::vec::Vec::from([\
                 (::std::string::String::from(\"{vname}\"), \
                  ::serde::Value::Map(::std::vec::Vec::from([{}])))])),",
                entries.join(", ")
            )
        }
        VariantKind::Tuple(1) => format!(
            "{enum_name}::{vname}(x0) => ::serde::Value::Map(::std::vec::Vec::from([\
             (::std::string::String::from(\"{vname}\"), ::serde::Serialize::to_value(x0))])),"
        ),
        VariantKind::Tuple(n) => {
            let bindings: Vec<String> = (0..*n).map(|k| format!("x{k}")).collect();
            let items: Vec<String> =
                bindings.iter().map(|b| format!("::serde::Serialize::to_value({b})")).collect();
            format!(
                "{enum_name}::{vname}({}) => ::serde::Value::Map(::std::vec::Vec::from([\
                 (::std::string::String::from(\"{vname}\"), \
                  ::serde::Value::Seq(::std::vec::Vec::from([{}])))])),",
                bindings.join(", "),
                items.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Input) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field(v, \"{name}\", \"{f}\")?)?"
                    )
                })
                .collect();
            format!(
                "if v.as_map().is_none() {{ \
                     return ::std::result::Result::Err(::serde::Error::expected(\"object for struct {name}\", v)); \
                 }} \
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                .collect();
            format!(
                "let items = v.as_seq().ok_or_else(|| ::serde::Error::expected(\"array for {name}\", v))?; \
                 if items.len() != {n} {{ \
                     return ::std::result::Result::Err(::serde::Error::expected(\"{n}-element array for {name}\", v)); \
                 }} \
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.kind, VariantKind::Unit))
        .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| match &v.kind {
            VariantKind::Unit => None,
            VariantKind::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(::serde::field(payload, \"{name}::{vn}\", \"{f}\")?)?",
                            vn = v.name
                        )
                    })
                    .collect();
                Some(format!(
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                    inits.join(", "),
                    vn = v.name
                ))
            }
            VariantKind::Tuple(1) => Some(format!(
                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(payload)?)),",
                vn = v.name
            )),
            VariantKind::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&items[{k}])?"))
                    .collect();
                Some(format!(
                    "\"{vn}\" => {{ \
                         let items = payload.as_seq().ok_or_else(|| ::serde::Error::expected(\"array for {name}::{vn}\", payload))?; \
                         if items.len() != {n} {{ \
                             return ::std::result::Result::Err(::serde::Error::expected(\"{n}-element array for {name}::{vn}\", payload)); \
                         }} \
                         ::std::result::Result::Ok({name}::{vn}({})) \
                     }},",
                    inits.join(", "),
                    vn = v.name
                ))
            }
        })
        .collect();

    format!(
        "if let ::serde::Value::Str(s) = v {{ \
             return match s.as_str() {{ \
                 {} \
                 other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                     \"unknown variant `{{other}}` of {name}\"))), \
             }}; \
         }} \
         if let ::std::option::Option::Some(m) = v.as_map() {{ \
             if m.len() == 1 {{ \
                 let (tag, payload) = (&m[0].0, &m[0].1); \
                 let _ = payload; \
                 return match tag.as_str() {{ \
                     {} \
                     other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\
                         \"unknown variant `{{other}}` of {name}\"))), \
                 }}; \
             }} \
         }} \
         ::std::result::Result::Err(::serde::Error::expected(\"externally tagged {name}\", v))",
        unit_arms.join(" "),
        data_arms.join(" ")
    )
}
