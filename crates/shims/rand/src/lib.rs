//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of external dependencies are replaced by std-only path crates
//! with the same names and the API subset this workspace actually uses (see
//! `DESIGN.md`, "Offline dependency shims"). This crate covers:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit PRNG (xoshiro256++) seedable
//!   via [`SeedableRng::seed_from_u64`];
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool`;
//! * [`distributions::Uniform`] / [`distributions::Distribution`];
//! * [`seq::SliceRandom::shuffle`].
//!
//! The streams are *not* bit-compatible with the real `rand` crate; all
//! in-repo determinism tests define their expectations against this
//! implementation.

/// Core random-number source: a stream of `u32`/`u64` values.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of reproducible generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an `Rng` (the subset of
/// `rand::distributions::Standard` this workspace uses).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa coverage.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let span = (self.end as i128 - self.start as i128) as u128;
                debug_assert!(span > 0, "gen_range on empty range");
                // Multiply-shift bounded sampling; bias is negligible for the
                // small spans this workspace draws (action/index selection).
                let r = rng.next_u64() as u128;
                (self.start as i128 + ((r * span) >> 64) as i128) as $t
            }
        }
    )*};
}

int_range!(usize, u32, u64, i32, i64);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        self.start + (self.end - self.start) * f32::sample_standard(rng)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of a [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic PRNG: xoshiro256++.
    ///
    /// Small, fast and high-quality; seeded from a single `u64` through a
    /// SplitMix64 expansion exactly as recommended by the xoshiro authors.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The raw xoshiro256++ state, for durable checkpoints that must
        /// resume a stream bit-exactly. (Shim-only API: the real `rand`
        /// crate exposes no equivalent, so only checkpointing code that is
        /// already coupled to this shim's streams may use it.)
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a [`Self::state`] snapshot, continuing
        /// the captured stream exactly.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Distribution objects (`Uniform` is the only one this workspace uses).
pub mod distributions {
    use super::{Rng, RngCore};

    /// Types that generate values of `T` given an RNG.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform `f32` distribution over a closed interval.
    #[derive(Clone, Copy, Debug)]
    pub struct Uniform {
        lo: f32,
        hi: f32,
    }

    impl Uniform {
        /// Uniform over `[lo, hi]`.
        pub fn new_inclusive(lo: f32, hi: f32) -> Self {
            Uniform { lo, hi }
        }

        /// Uniform over `[lo, hi)`.
        pub fn new(lo: f32, hi: f32) -> Self {
            Uniform { lo, hi }
        }
    }

    impl Distribution<f32> for Uniform {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            rng.gen_range(self.lo..self.hi)
        }
    }
}

/// Slice utilities (`shuffle` is the only one this workspace uses).
pub mod seq {
    use super::{Rng, RngCore};

    /// Random reordering and selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` on an empty slice.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<f32>(), b.gen::<f32>());
        }
        let mut c = StdRng::seed_from_u64(43);
        let equal = (0..100).all(|_| a.gen::<f32>() == c.gen::<f32>());
        assert!(!equal, "different seeds must diverge");
    }

    #[test]
    fn state_snapshot_resumes_stream_exactly() {
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..13 {
            let _: u64 = a.gen();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn gen_is_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            let i = rng.gen_range(0..5usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.2)).count();
        assert!((1_500..2_500).contains(&hits), "p=0.2 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left slice ordered");
    }
}
