//! Offline stand-in for `criterion` (see `DESIGN.md`, "Offline dependency
//! shims").
//!
//! The real crate is a statistics-heavy benchmark harness; this shim keeps
//! the same bench-target source compatible (`Criterion`, `BenchmarkGroup`,
//! `Bencher::iter`/`iter_batched`, `BenchmarkId`, `criterion_group!`,
//! `criterion_main!`, `black_box`) and reports a simple mean wall-clock
//! time per iteration. Good enough to keep every figure/table bench target
//! compiling and runnable offline; not a substitute for criterion's
//! statistical rigor.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, not acted on).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Identifier for one parameterized benchmark case.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives the timed closure of one benchmark.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the chosen iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup` product per iteration; only the
    /// routine is timed.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Accepts CLI args for compatibility (ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the per-benchmark iteration count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Sets the measurement budget (accepted, not acted on).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

fn run_one(name: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    // One warm-up pass, then the measured pass.
    let mut warmup = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut warmup);
    let iters = sample_size.max(1) as u64;
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / iters as f64;
    println!("bench {name:<48} {:>12.3} µs/iter ({iters} iters)", per_iter * 1e6);
}

/// Collects benchmark functions into a runnable group, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $config.configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Emits `main` running the given groups, as in criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::{BatchSize, BenchmarkId, Criterion};

    #[test]
    fn bench_function_runs_routine() {
        let mut runs = 0u32;
        Criterion::default().sample_size(3).bench_function("t", |b| b.iter(|| runs += 1));
        // warm-up (1) + measured (3), possibly repeated by re-entry.
        assert!(runs >= 4);
    }

    #[test]
    fn groups_compose_ids() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut hits = 0u32;
        g.bench_with_input(BenchmarkId::new("f", 7), &3u32, |b, &x| {
            b.iter_batched(|| x, |v| hits += v, BatchSize::SmallInput);
        });
        g.finish();
        assert!(hits >= 3);
        assert_eq!(BenchmarkId::new("f", 7).to_string(), "f/7");
    }
}
