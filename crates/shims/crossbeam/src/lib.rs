//! Offline stand-in for `crossbeam` (see `DESIGN.md`, "Offline dependency
//! shims"). Only the MPMC-ish channel subset the chief–employee executor
//! uses is provided: [`channel::bounded`] with cloneable senders and a
//! single-consumer receiver, mapped onto `std::sync::mpsc::sync_channel`.

/// Multi-producer channels with a bounded capacity.
pub mod channel {
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of a bounded channel; cheap to clone.
    #[derive(Debug)]
    pub struct Sender<T> {
        inner: mpsc::SyncSender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Blocks until the message is enqueued; errs if the receiver has
        /// been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks for the next message; errs once every sender is dropped
        /// and the queue is drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive: `None` if no message is ready.
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }

        /// Receives with a timeout: `None` on timeout or disconnect.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<T> {
            self.inner.recv_timeout(timeout).ok()
        }
    }

    /// Creates a channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    mod tests {
        use super::bounded;

        #[test]
        fn roundtrip_through_clone_senders() {
            let (tx, rx) = bounded::<u32>(4);
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(1).ok());
            std::thread::spawn(move || tx.send(2).ok());
            let mut got =
                vec![rx.recv().expect("first message"), rx.recv().expect("second message")];
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }

        #[test]
        fn recv_errs_after_senders_drop() {
            let (tx, rx) = bounded::<u32>(1);
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
