//! Model-aware threads mirroring `std::thread`.

use crate::sched::{current, sched_point, spawn_model, ResultSlot, Sched};
use std::sync::{Arc, PoisonError};

/// The result of joining a thread, as `std::thread::Result`.
pub type Result<T> = std::thread::Result<T>;

enum Inner<T> {
    Model { sched: Arc<Sched>, target: usize, slot: ResultSlot<T> },
    Os(std::thread::JoinHandle<T>),
}

/// An owned handle to a spawned thread, as `std::thread::JoinHandle`.
pub struct JoinHandle<T>(Inner<T>);

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JoinHandle(..)")
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    pub fn join(self) -> Result<T> {
        match self.0 {
            Inner::Model { sched, target, slot } => {
                let tid = match current() {
                    Some((_, tid)) => tid,
                    None => unreachable!("model JoinHandle joined outside its model"),
                };
                sched.join_wait(tid, target);
                match slot.lock().unwrap_or_else(PoisonError::into_inner).take() {
                    Some(res) => res,
                    // The target unwound via an abort before producing a
                    // result; this thread is about to be unwound too, so
                    // any placeholder panic payload works.
                    None => Err(Box::new("loom execution aborted")),
                }
            }
            Inner::Os(h) => h.join(),
        }
    }
}

/// Spawns a thread. Inside a model the thread is registered with the
/// scheduler and its interleavings are explored; outside it is a plain
/// `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current() {
        Some((sched, tid)) => {
            let (target, slot) = spawn_model(&sched, f);
            // Scheduling point: the child is now a candidate, so both
            // child-first and parent-first orders get explored.
            sched.switch(tid);
            JoinHandle(Inner::Model { sched, target, slot })
        }
        None => JoinHandle(Inner::Os(std::thread::spawn(f))),
    }
}

/// Yields the current thread: a scheduling point under the model.
pub fn yield_now() {
    if current().is_some() {
        sched_point();
    } else {
        std::thread::yield_now();
    }
}

/// A thread factory mirroring `std::thread::Builder` (the name is kept for
/// the OS thread outside a model and ignored inside one).
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// Creates a builder.
    #[must_use]
    pub fn new() -> Self {
        Builder { name: None }
    }

    /// Names the thread-to-be.
    #[must_use]
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Spawns the thread; inside a model, registration cannot fail.
    pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        match current() {
            Some(_) => Ok(spawn(f)),
            None => {
                let mut b = std::thread::Builder::new();
                if let Some(n) = self.name {
                    b = b.name(n);
                }
                Ok(JoinHandle(Inner::Os(b.spawn(f)?)))
            }
        }
    }
}
