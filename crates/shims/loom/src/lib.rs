//! Offline stand-in for `loom` (see `DESIGN.md`, "Offline dependency
//! shims"): a **bounded-exhaustive concurrency model checker** exposing the
//! `loom` API subset this workspace uses.
//!
//! [`model`] runs a closure repeatedly, exploring thread interleavings via
//! depth-first search over *scheduling points* — every operation on the
//! shim's [`sync`] primitives and [`thread`] API. Exactly one model thread
//! runs at a time (a turn token handed around by a controlled scheduler),
//! so each execution is deterministic and replayable; between executions
//! the last undecided scheduling choice is advanced until the space is
//! exhausted. Assertion failures, panics, and **deadlocks** (including
//! lost condvar wakeups) in *any* explored interleaving fail the model
//! with the first failing execution's message.
//!
//! ## Scope and honesty
//!
//! * Interleavings are explored at **sequential consistency**: the
//!   `Ordering` arguments on [`sync::atomic`] types are accepted for API
//!   compatibility but weak-memory reorderings are not modelled (real loom
//!   models C11 orderings; this shim cannot). ThreadSanitizer in CI covers
//!   the ordering axis on real hardware — see `cargo xtask analyze`.
//! * Exploration is **context-bounded**: at most `LOOM_MAX_PREEMPTIONS`
//!   involuntary switches per execution (default 2; `0` = unbounded full
//!   DFS). Empirically almost all schedule-sensitive bugs need ≤ 2
//!   preemptions, and the bound keeps suites fast enough for CI.
//! * Spurious condvar wakeups are not generated; a missed notification
//!   therefore shows up as a deadlock, the bug class it causes in practice.
//! * Executions are capped by `LOOM_MAX_ITERATIONS` (default 250 000); an
//!   exploration that hits the cap prints a warning and passes, so model
//!   closures should stay small (a handful of threads and operations).
//!
//! Only code running *inside* [`model`] is checked; the primitives degrade
//! to plain std behaviour outside, so `static` counters built on
//! [`sync::atomic`] types keep working in ordinary `--cfg loom` builds.

pub mod sync;
pub mod thread;

mod sched;

use sched::{spawn_model, Choice, Sched};
use std::sync::Arc;

/// Model-aware spin hints.
pub mod hint {
    /// A scheduling point under the model; a real spin hint outside.
    pub fn spin_loop() {
        if crate::sched::current().is_some() {
            crate::sched::sched_point();
        } else {
            std::hint::spin_loop();
        }
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Installs (once per process) a panic hook that silences the internal
/// unwind token used to tear down aborted executions, plus deliberate
/// panics tagged `[loom-contained]` by panic-containment tests. All other
/// panics go to the previously installed hook.
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().is::<sched::AbortToken>() {
                return;
            }
            let msg = info
                .payload()
                .downcast_ref::<&str>()
                .copied()
                .map(ToOwned::to_owned)
                .or_else(|| info.payload().downcast_ref::<String>().cloned());
            if msg.as_deref().is_some_and(|m| m.contains("[loom-contained]")) {
                return;
            }
            prev(info);
        }));
    });
}

/// Explores the interleavings of `f` and panics on the first failing
/// execution (assertion failure, panic, or deadlock).
///
/// `f` must be deterministic given a schedule: no wall-clock time, OS
/// randomness, or state leaked between executions that decisions depend
/// on. Shared state must go through [`sync`] primitives to be visible to
/// the checker.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    install_quiet_hook();
    let max_preemptions = env_usize("LOOM_MAX_PREEMPTIONS", 2);
    let max_iterations = env_usize("LOOM_MAX_ITERATIONS", 250_000);
    let f = Arc::new(f);
    let mut prefix: Vec<Choice> = Vec::new();
    let mut executions = 0usize;
    loop {
        executions += 1;
        let sched = Arc::new(Sched::new(std::mem::take(&mut prefix), max_preemptions));
        let fx = Arc::clone(&f);
        let (_tid, _slot) = spawn_model(&sched, move || fx());
        let (failure, mut path) = sched.run_to_completion();
        if let Some(msg) = failure {
            panic!("loom: model failed on execution {executions}: {msg}");
        }
        // Backtrack: advance the deepest scheduling choice that still has
        // untried alternatives, discarding everything after it.
        let exhausted = loop {
            match path.last_mut() {
                None => break true,
                Some(c) if c.index + 1 < c.alternatives => {
                    c.index += 1;
                    break false;
                }
                Some(_) => {
                    path.pop();
                }
            }
        };
        if exhausted {
            return;
        }
        if executions >= max_iterations {
            eprintln!(
                "loom: warning: exploration truncated after {executions} executions \
                 (LOOM_MAX_ITERATIONS={max_iterations}); coverage is partial"
            );
            return;
        }
        prefix = path;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// The checker must *find* the lost update in an unsynchronized
    /// load-then-store increment — the canonical two-thread race.
    #[test]
    fn finds_lost_update_race() {
        let failed = catch_unwind(AssertUnwindSafe(|| {
            super::model(|| {
                let v = Arc::new(AtomicUsize::new(0));
                let v2 = Arc::clone(&v);
                let t = super::thread::spawn(move || {
                    let cur = v2.load(Ordering::SeqCst);
                    v2.store(cur + 1, Ordering::SeqCst);
                });
                let cur = v.load(Ordering::SeqCst);
                v.store(cur + 1, Ordering::SeqCst);
                t.join().unwrap();
                assert_eq!(v.load(Ordering::SeqCst), 2, "[loom-contained] lost update");
            });
        }))
        .is_err();
        assert!(failed, "the model checker must discover the lost-update interleaving");
    }

    /// The same counter with an atomic RMW passes every interleaving.
    #[test]
    fn atomic_rmw_increment_is_race_free() {
        super::model(|| {
            let v = Arc::new(AtomicUsize::new(0));
            let v2 = Arc::clone(&v);
            let t = super::thread::spawn(move || {
                v2.fetch_add(1, Ordering::SeqCst);
            });
            v.fetch_add(1, Ordering::SeqCst);
            t.join().unwrap();
            assert_eq!(v.load(Ordering::SeqCst), 2);
        });
    }

    /// Mutex-protected state is exclusive in every interleaving.
    #[test]
    fn mutex_excludes_and_publishes() {
        super::model(|| {
            let m = Arc::new(Mutex::new(0u32));
            let m2 = Arc::clone(&m);
            let t = super::thread::spawn(move || {
                *m2.lock().unwrap() += 1;
            });
            *m.lock().unwrap() += 1;
            t.join().unwrap();
            assert_eq!(*m.lock().unwrap(), 2);
        });
    }

    /// Both schedule orders of two racing writers are actually reached.
    #[test]
    fn explores_both_orders() {
        use std::sync::Mutex as StdMutex;
        let seen: &'static StdMutex<Vec<usize>> = Box::leak(Box::new(StdMutex::new(Vec::new())));
        super::model(move || {
            let v = Arc::new(AtomicUsize::new(0));
            let v2 = Arc::clone(&v);
            let t = super::thread::spawn(move || {
                v2.store(1, Ordering::SeqCst);
            });
            v.store(2, Ordering::SeqCst);
            t.join().unwrap();
            seen.lock().unwrap().push(v.load(Ordering::SeqCst));
        });
        let seen = seen.lock().unwrap();
        assert!(seen.contains(&1), "child-last order never explored");
        assert!(seen.contains(&2), "parent-last order never explored");
    }

    /// ABBA lock ordering must be reported as a deadlock.
    #[test]
    fn detects_abba_deadlock() {
        let failed = catch_unwind(AssertUnwindSafe(|| {
            super::model(|| {
                let a = Arc::new(Mutex::new(()));
                let b = Arc::new(Mutex::new(()));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = super::thread::spawn(move || {
                    let _ga = a2.lock().unwrap();
                    let _gb = b2.lock().unwrap();
                });
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
                drop((_ga, _gb));
                t.join().unwrap();
            });
        }))
        .is_err();
        assert!(failed, "ABBA ordering must deadlock in some interleaving");
    }

    /// A bare `wait` with no predicate loop misses a notification that
    /// fires before the wait starts — found as a deadlock. The `wait_while`
    /// variant passes. This is the `condvar-predicate` lint's rationale.
    #[test]
    fn finds_lost_wakeup_on_bare_wait() {
        let failed = catch_unwind(AssertUnwindSafe(|| {
            super::model(|| {
                let pair = Arc::new((Mutex::new(false), Condvar::new()));
                let pair2 = Arc::clone(&pair);
                let t = super::thread::spawn(move || {
                    *pair2.0.lock().unwrap() = true;
                    pair2.1.notify_one();
                });
                let ready = pair.0.lock().unwrap();
                // BUG (deliberate): waiting without checking the predicate;
                // if the notifier already ran, the wakeup is gone forever.
                drop(pair.1.wait(ready).unwrap());
                t.join().unwrap();
            });
        }))
        .is_err();
        assert!(failed, "bare condvar wait must lose a wakeup in some interleaving");

        super::model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let t = super::thread::spawn(move || {
                *pair2.0.lock().unwrap() = true;
                pair2.1.notify_one();
            });
            let ready = pair.0.lock().unwrap();
            let ready = pair.1.wait_while(ready, |r| !*r).unwrap();
            assert!(*ready);
            drop(ready);
            t.join().unwrap();
        });
    }

    /// Flag handoff through SeqCst atomics is correct in every order.
    #[test]
    fn flag_handoff_is_visible() {
        super::model(|| {
            let flag = Arc::new(AtomicBool::new(false));
            let data = Arc::new(AtomicUsize::new(0));
            let (f2, d2) = (Arc::clone(&flag), Arc::clone(&data));
            let t = super::thread::spawn(move || {
                d2.store(42, Ordering::SeqCst);
                f2.store(true, Ordering::SeqCst);
            });
            if flag.load(Ordering::SeqCst) {
                assert_eq!(data.load(Ordering::SeqCst), 42, "flag set but data not visible");
            }
            t.join().unwrap();
        });
    }

    /// Primitives work as plain std types outside a model.
    #[test]
    fn degrades_to_std_outside_model() {
        static COUNT: AtomicUsize = AtomicUsize::new(0);
        COUNT.fetch_add(3, Ordering::Relaxed);
        assert_eq!(COUNT.load(Ordering::Relaxed), 3);
        let m = Mutex::new(1);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 2);
        let t = super::thread::spawn(|| 7usize);
        assert_eq!(t.join().unwrap(), 7);
    }
}
