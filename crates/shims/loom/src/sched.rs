//! The controlled scheduler behind [`crate::model`].
//!
//! One model execution runs every model thread on a real OS thread, but a
//! single "turn token" (`State::cur`) ensures exactly one of them makes
//! progress at any instant. Every shim primitive (atomic op, mutex acquire
//! and release, condvar wait/notify, spawn/join/yield) calls back into the
//! scheduler, which treats the call as a *scheduling point*: a place where
//! the set of runnable threads is enumerated and one is chosen to run next.
//!
//! Exploration is a depth-first search over those choices. The first
//! execution records, at each point with more than one runnable thread, a
//! [`Choice`] with index 0; subsequent executions replay a mutated prefix
//! and extend it. When every recorded choice has exhausted its
//! alternatives, the (bounded) schedule space has been fully explored.
//!
//! Blocked threads (mutex contention, condvar waits, joins) are never
//! candidates. If no thread is runnable while some are still blocked, the
//! execution is reported as a **deadlock** — which is also how lost condvar
//! wakeups surface. A thread panic aborts the whole model with the panic
//! message; the remaining threads are unwound with an [`AbortToken`].

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar as OsCondvar, Mutex as OsMutex, MutexGuard as OsGuard, PoisonError};

/// Hard cap on scheduling points in a single execution; exceeding it means
/// a runaway schedule (e.g. an unbounded spin) and aborts the model.
const MAX_POINTS_PER_EXECUTION: usize = 1_000_000;

/// Panic payload used to unwind model threads when an execution aborts
/// (deadlock detected, another thread panicked, replay diverged). The
/// process-wide panic hook installed by [`crate::model`] silences it.
pub(crate) struct AbortToken;

/// Why a model thread is not currently runnable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Block {
    /// Waiting to acquire the mutex at this address.
    Mutex(usize),
    /// Waiting on the condvar at this address.
    Condvar(usize),
    /// Waiting for the thread with this id to finish.
    Join(usize),
}

/// One recorded scheduling decision: which runnable-thread index was taken,
/// out of how many alternatives. Only points with ≥ 2 alternatives are
/// recorded; forced moves replay identically for free.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Choice {
    pub(crate) index: usize,
    pub(crate) alternatives: usize,
}

struct Th {
    finished: bool,
    blocked: Option<Block>,
}

pub(crate) struct State {
    threads: Vec<Th>,
    /// Turn token: the id of the one thread allowed to make progress.
    cur: usize,
    /// All threads finished; the execution completed normally.
    pub(crate) done: bool,
    /// The execution is being torn down (deadlock, panic, divergence).
    pub(crate) abort: bool,
    /// First failure message; propagated by the controller as a panic.
    pub(crate) failure: Option<String>,
    /// DFS decision path: replayed prefix + decisions appended this run.
    pub(crate) path: Vec<Choice>,
    /// Next position in `path` during replay.
    pos: usize,
    preemptions: usize,
    max_preemptions: usize,
    /// Mutex address → owning thread id.
    locked: HashMap<usize, usize>,
    /// Condvar address → FIFO of waiting thread ids.
    cv_waiters: HashMap<usize, VecDeque<usize>>,
    /// OS handles of every model thread, joined by the controller.
    pub(crate) os_handles: Vec<std::thread::JoinHandle<()>>,
}

pub(crate) struct Sched {
    state: OsMutex<State>,
    /// Turn-token condvar: model threads wait here for their turn, and the
    /// controller waits here for `done`/`abort`.
    turn: OsCondvar,
}

thread_local! {
    /// The scheduler and thread id of the current OS thread, when it is a
    /// model thread. `None` outside `model()` — primitives then degrade to
    /// their plain std behaviour.
    static CURRENT: RefCell<Option<(Arc<Sched>, usize)>> = const { RefCell::new(None) };
}

/// The scheduler/thread-id pair for the calling thread, if it is a model
/// thread. Uses `try_with` so thread-local destructors that touch shim
/// atomics after teardown see `None` instead of panicking.
pub(crate) fn current() -> Option<(Arc<Sched>, usize)> {
    CURRENT.try_with(|c| c.borrow().clone()).ok().flatten()
}

/// Runs `sched.switch(tid)` when called from a model thread; no-op outside.
pub(crate) fn sched_point() {
    if let Some((sched, tid)) = current() {
        sched.switch(tid);
    }
}

fn lock_state(s: &Sched) -> OsGuard<'_, State> {
    s.state.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Sched {
    pub(crate) fn new(prefix: Vec<Choice>, max_preemptions: usize) -> Self {
        Sched {
            state: OsMutex::new(State {
                threads: Vec::new(),
                cur: 0,
                done: false,
                abort: false,
                failure: None,
                path: prefix,
                pos: 0,
                preemptions: 0,
                max_preemptions,
                locked: HashMap::new(),
                cv_waiters: HashMap::new(),
                os_handles: Vec::new(),
            }),
            turn: OsCondvar::new(),
        }
    }

    /// Parks the calling model thread until it holds the turn token (or the
    /// execution aborts).
    fn wait_turn<'a>(&'a self, mut st: OsGuard<'a, State>, tid: usize) -> OsGuard<'a, State> {
        while !st.abort && st.cur != tid {
            st = self.turn.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        st
    }

    /// Chooses the next thread to run. `self_runnable` is false when the
    /// caller is blocking or finishing. Returns false when the execution
    /// must abort (`st.abort`/`st.failure` are then set) and true otherwise
    /// — including normal completion, which sets `st.done`.
    fn pick_next(&self, st: &mut State, tid: usize, self_runnable: bool) -> bool {
        let mut cands: Vec<usize> = Vec::new();
        if self_runnable {
            cands.push(tid);
        }
        for i in 0..st.threads.len() {
            if i != tid && !st.threads[i].finished && st.threads[i].blocked.is_none() {
                cands.push(i);
            }
        }
        if cands.is_empty() {
            if st.threads.iter().all(|t| t.finished) {
                st.done = true;
                return true;
            }
            let stuck: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !t.finished)
                .map(|(i, t)| format!("thread {i} blocked on {:?}", t.blocked))
                .collect();
            st.abort = true;
            st.failure =
                Some(format!("deadlock: every live thread is blocked ({})", stuck.join("; ")));
            return false;
        }
        // Preemption bounding (Musuvathi & Qadeer): once the budget is
        // spent, a runnable thread is never switched away from, which keeps
        // the DFS polynomial while still covering the schedules that find
        // almost all real bugs. Budget 0 means unbounded (full DFS).
        let bounded =
            self_runnable && st.max_preemptions != 0 && st.preemptions >= st.max_preemptions;
        let n_alts = if bounded { 1 } else { cands.len() };
        let idx = if n_alts == 1 {
            0
        } else if st.pos < st.path.len() {
            let c = st.path[st.pos];
            if c.alternatives != n_alts {
                st.abort = true;
                st.failure = Some(format!(
                    "nondeterministic model: replay point {} had {} alternatives, expected {}; \
                     model closures must be deterministic (no wall-clock time or OS randomness)",
                    st.pos, n_alts, c.alternatives
                ));
                return false;
            }
            st.pos += 1;
            c.index
        } else {
            if st.path.len() >= MAX_POINTS_PER_EXECUTION {
                st.abort = true;
                st.failure = Some(
                    "execution exceeded the scheduling-point cap (unbounded loop in the model?)"
                        .to_owned(),
                );
                return false;
            }
            st.path.push(Choice { index: 0, alternatives: n_alts });
            st.pos += 1;
            0
        };
        let chosen = cands[idx];
        if self_runnable && chosen != tid {
            st.preemptions += 1;
        }
        st.cur = chosen;
        true
    }

    /// Releases the state guard, wakes everyone, and unwinds the calling
    /// model thread with an [`AbortToken`].
    fn abort_unwind(&self, st: OsGuard<'_, State>) -> ! {
        drop(st);
        self.turn.notify_all();
        std::panic::panic_any(AbortToken)
    }

    /// One scheduling point: enumerate runnable threads, pick the next per
    /// the DFS path, and hand over or keep the turn token.
    pub(crate) fn switch(&self, tid: usize) {
        let mut st = lock_state(self);
        if st.abort || !self.pick_next(&mut st, tid, true) {
            self.abort_unwind(st);
        }
        if st.cur != tid {
            self.turn.notify_all();
            st = self.wait_turn(st, tid);
            if st.abort {
                self.abort_unwind(st);
            }
        }
    }

    /// Marks the caller blocked for `why`, schedules someone else, and
    /// parks until a wake event clears the block and the token returns.
    fn block_on(&self, tid: usize, why: Block) {
        let mut st = lock_state(self);
        if st.abort {
            self.abort_unwind(st);
        }
        st.threads[tid].blocked = Some(why);
        if !self.pick_next(&mut st, tid, false) {
            self.abort_unwind(st);
        }
        self.turn.notify_all();
        st = self.wait_turn(st, tid);
        if st.abort {
            self.abort_unwind(st);
        }
    }

    /// Acquires the model mutex at `addr`, blocking (in model time) while
    /// another thread owns it. One scheduling point precedes the attempt.
    pub(crate) fn mutex_acquire(&self, tid: usize, addr: usize) {
        self.switch(tid);
        loop {
            {
                let mut st = lock_state(self);
                if st.abort {
                    self.abort_unwind(st);
                }
                if let std::collections::hash_map::Entry::Vacant(e) = st.locked.entry(addr) {
                    e.insert(tid);
                    return;
                }
            }
            // Owned by someone else: block until an unlock clears us, then
            // retry (another woken thread may have won the race).
            self.block_on(tid, Block::Mutex(addr));
        }
    }

    /// Releases the model mutex at `addr` and lets every thread blocked on
    /// it retry. Also a scheduling point. Tolerates teardown: during an
    /// abort (guard drops while unwinding) it does nothing.
    pub(crate) fn mutex_release(&self, tid: usize, addr: usize) {
        let mut st = lock_state(self);
        if st.abort {
            return;
        }
        st.locked.remove(&addr);
        for th in &mut st.threads {
            if th.blocked == Some(Block::Mutex(addr)) {
                th.blocked = None;
            }
        }
        if !self.pick_next(&mut st, tid, true) {
            self.abort_unwind(st);
        }
        if st.cur != tid {
            self.turn.notify_all();
            st = self.wait_turn(st, tid);
            if st.abort {
                self.abort_unwind(st);
            }
        }
    }

    /// Atomically releases the mutex at `mutex_addr`, enqueues the caller
    /// on the condvar at `cv_addr`, blocks until notified, and reacquires
    /// the mutex — the model of `Condvar::wait`. Spurious wakeups are not
    /// modelled.
    pub(crate) fn condvar_wait(&self, tid: usize, cv_addr: usize, mutex_addr: usize) {
        {
            let mut st = lock_state(self);
            if st.abort {
                self.abort_unwind(st);
            }
            st.locked.remove(&mutex_addr);
            for th in &mut st.threads {
                if th.blocked == Some(Block::Mutex(mutex_addr)) {
                    th.blocked = None;
                }
            }
            st.cv_waiters.entry(cv_addr).or_default().push_back(tid);
            st.threads[tid].blocked = Some(Block::Condvar(cv_addr));
            if !self.pick_next(&mut st, tid, false) {
                self.abort_unwind(st);
            }
            self.turn.notify_all();
            st = self.wait_turn(st, tid);
            if st.abort {
                self.abort_unwind(st);
            }
        }
        self.mutex_acquire(tid, mutex_addr);
    }

    /// Wakes one (FIFO) or all waiters of the condvar at `cv_addr`; they
    /// then race to reacquire their mutex. Also a scheduling point.
    pub(crate) fn condvar_notify(&self, tid: usize, cv_addr: usize, all: bool) {
        let mut st = lock_state(self);
        if st.abort {
            self.abort_unwind(st);
        }
        let woken: Vec<usize> = match st.cv_waiters.get_mut(&cv_addr) {
            Some(q) if all => q.drain(..).collect(),
            Some(q) => q.pop_front().into_iter().collect(),
            None => Vec::new(),
        };
        for t in woken {
            st.threads[t].blocked = None;
        }
        if !self.pick_next(&mut st, tid, true) {
            self.abort_unwind(st);
        }
        if st.cur != tid {
            self.turn.notify_all();
            st = self.wait_turn(st, tid);
            if st.abort {
                self.abort_unwind(st);
            }
        }
    }

    /// Blocks (in model time) until thread `target` finishes.
    pub(crate) fn join_wait(&self, tid: usize, target: usize) {
        self.switch(tid);
        let finished = {
            let st = lock_state(self);
            if st.abort {
                self.abort_unwind(st);
            }
            st.threads[target].finished
        };
        if !finished {
            self.block_on(tid, Block::Join(target));
        }
    }

    /// Marks the calling thread finished, wakes its joiners, and hands the
    /// token to the next runnable thread (or completes the execution).
    /// `failure` carries the panic message when the thread died panicking.
    fn finish(&self, tid: usize, failure: Option<String>) {
        let mut st = lock_state(self);
        st.threads[tid].finished = true;
        for th in &mut st.threads {
            if th.blocked == Some(Block::Join(tid)) {
                th.blocked = None;
            }
        }
        if let Some(msg) = failure {
            if st.failure.is_none() {
                st.failure = Some(msg);
            }
            st.abort = true;
        } else if !st.abort {
            // On deadlock this sets abort+failure; either way fall through
            // to the notify so the controller (and parked threads) wake.
            let _ = self.pick_next(&mut st, tid, false);
        }
        drop(st);
        self.turn.notify_all();
    }

    /// Controller side: waits for the execution to finish, joins every OS
    /// thread, and returns the failure (if any) and the recorded path.
    pub(crate) fn run_to_completion(&self) -> (Option<String>, Vec<Choice>) {
        let mut st = lock_state(self);
        while !st.done && !st.abort {
            st = self.turn.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        let handles = std::mem::take(&mut st.os_handles);
        drop(st);
        self.turn.notify_all();
        for h in handles {
            let _ = h.join();
        }
        let mut st = lock_state(self);
        (st.failure.take(), std::mem::take(&mut st.path))
    }
}

/// Where a spawned model thread deposits its closure's outcome.
pub(crate) type ResultSlot<T> = Arc<OsMutex<Option<std::thread::Result<T>>>>;

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "model thread panicked with a non-string payload".to_owned()
    }
}

/// Registers and starts a new model thread running `f`. The OS thread is
/// parked until the scheduler grants it the turn token for the first time.
/// Returns the model thread id and the slot its result will land in.
pub(crate) fn spawn_model<T, F>(sched: &Arc<Sched>, f: F) -> (usize, ResultSlot<T>)
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let tid = {
        let mut st = lock_state(sched);
        st.threads.push(Th { finished: false, blocked: None });
        st.threads.len() - 1
    };
    let slot: ResultSlot<T> = Arc::new(OsMutex::new(None));
    let slot2 = Arc::clone(&slot);
    let sched2 = Arc::clone(sched);
    let spawned = std::thread::Builder::new().name(format!("loom-model-{tid}")).spawn(move || {
        CURRENT.with_borrow_mut(|c| *c = Some((Arc::clone(&sched2), tid)));
        {
            let st = lock_state(&sched2);
            let st = sched2.wait_turn(st, tid);
            if st.abort {
                drop(st);
                CURRENT.with_borrow_mut(Option::take);
                sched2.finish(tid, None);
                return;
            }
        }
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        // Clear the model-thread identity BEFORE finishing: thread-local
        // destructors (e.g. arena freelists updating shim atomics) run
        // after this closure returns, and must see plain-std behaviour
        // rather than scheduling points on a finished thread.
        CURRENT.with_borrow_mut(Option::take);
        match outcome {
            Ok(v) => {
                *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(Ok(v));
                sched2.finish(tid, None);
            }
            Err(p) if p.is::<AbortToken>() => sched2.finish(tid, None),
            Err(p) => {
                let msg = panic_message(p.as_ref());
                *slot2.lock().unwrap_or_else(PoisonError::into_inner) = Some(Err(p));
                sched2.finish(tid, Some(msg));
            }
        }
    });
    match spawned {
        Ok(h) => lock_state(sched).os_handles.push(h),
        Err(e) => panic!("loom: could not spawn model thread: {e}"),
    }
    (tid, slot)
}
