//! Model-aware synchronization primitives mirroring `std::sync`.
//!
//! Inside [`crate::model`] every operation is a scheduling point explored
//! by the checker; outside a model the types degrade to their plain std
//! behaviour, so statics built on them keep working in ordinary builds.

use crate::sched::{current, sched_point};
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

pub use std::sync::Arc;
pub use std::sync::LockResult;

/// Model-aware atomics. `Ordering` is re-exported from std: the checker
/// explores sequentially-consistent interleavings regardless of the
/// ordering argument (weak-memory reorderings are *not* modelled; see the
/// crate docs), so the argument only documents intent.
pub mod atomic {
    use super::sched_point;
    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic {
        ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty, rmw) => {
            model_atomic!($(#[$doc])* $name, $std, $ty);
            impl $name {
                /// Adds to the value, returning the previous value.
                pub fn fetch_add(&self, val: $ty, _order: Ordering) -> $ty {
                    sched_point();
                    self.v.fetch_add(val, Ordering::SeqCst)
                }

                /// Subtracts from the value, returning the previous value.
                pub fn fetch_sub(&self, val: $ty, _order: Ordering) -> $ty {
                    sched_point();
                    self.v.fetch_sub(val, Ordering::SeqCst)
                }
            }
        };
        ($(#[$doc:meta])* $name:ident, $std:ident, $ty:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name {
                v: std::sync::atomic::$std,
            }

            impl $name {
                /// Creates a new atomic holding `val`.
                pub const fn new(val: $ty) -> Self {
                    Self { v: std::sync::atomic::$std::new(val) }
                }

                /// Loads the value.
                pub fn load(&self, _order: Ordering) -> $ty {
                    sched_point();
                    self.v.load(Ordering::SeqCst)
                }

                /// Stores a value.
                pub fn store(&self, val: $ty, _order: Ordering) {
                    sched_point();
                    self.v.store(val, Ordering::SeqCst);
                }

                /// Swaps the value, returning the previous one.
                pub fn swap(&self, val: $ty, _order: Ordering) -> $ty {
                    sched_point();
                    self.v.swap(val, Ordering::SeqCst)
                }

                /// Stores `new` if the current value equals `current`.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$ty, $ty> {
                    sched_point();
                    self.v.compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Like [`Self::compare_exchange`]; the model never fails
                /// spuriously.
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    self.compare_exchange(current, new, success, failure)
                }

                /// Applies `f` until it succeeds atomically, as std's
                /// `fetch_update`.
                pub fn fetch_update<F>(
                    &self,
                    _set_order: Ordering,
                    _fetch_order: Ordering,
                    f: F,
                ) -> Result<$ty, $ty>
                where
                    F: FnMut($ty) -> Option<$ty>,
                {
                    sched_point();
                    self.v.fetch_update(Ordering::SeqCst, Ordering::SeqCst, f)
                }
            }
        };
    }

    model_atomic!(
        /// Model-aware `AtomicBool`.
        AtomicBool, AtomicBool, bool
    );
    model_atomic!(
        /// Model-aware `AtomicU32`.
        AtomicU32, AtomicU32, u32, rmw
    );
    model_atomic!(
        /// Model-aware `AtomicU64`.
        AtomicU64, AtomicU64, u64, rmw
    );
    model_atomic!(
        /// Model-aware `AtomicUsize`.
        AtomicUsize, AtomicUsize, usize, rmw
    );
}

/// A model-aware mutual-exclusion lock mirroring `std::sync::Mutex`.
///
/// `lock()` returns `LockResult` for std API compatibility but never
/// actually poisons: like `parking_lot`, a panic while holding the lock
/// simply releases it.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// The guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// Whether this acquisition went through the model scheduler (and must
    /// release through it on drop).
    model: bool,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// The mutex's model identity: its address, stable for its lifetime.
    fn addr(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    /// Acquires the lock. Inside a model this is a scheduling point and
    /// blocks in model time; the result is always `Ok`.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let model = match current() {
            Some((sched, tid)) => {
                sched.mutex_acquire(tid, self.addr());
                true
            }
            None => false,
        };
        // Under the model the real lock is always uncontended: the
        // scheduler only lets one owner through at a time.
        let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        Ok(MutexGuard { lock: self, inner: Some(inner), model })
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> LockResult<T> {
        Ok(self.inner.into_inner().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        })
    }
}

impl<'a, T> MutexGuard<'a, T> {
    fn inner_ref(&self) -> &std::sync::MutexGuard<'a, T> {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("loom MutexGuard accessed after release"),
        }
    }

    fn inner_mut(&mut self) -> &mut std::sync::MutexGuard<'a, T> {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("loom MutexGuard accessed after release"),
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner_ref()
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner_mut()
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real lock first, then the model lock: the moment the
        // scheduler lets another thread in, the real mutex must be free.
        self.inner = None;
        if self.model {
            if let Some((sched, tid)) = current() {
                sched.mutex_release(tid, self.lock.addr());
            }
        }
    }
}

/// A model-aware condition variable mirroring `std::sync::Condvar`.
///
/// Spurious wakeups are not modelled: a thread in `wait` wakes only via
/// `notify_one`/`notify_all`. A missed notification therefore surfaces as
/// a model deadlock — which is exactly the bug class predicate loops
/// (`wait_while`) exist to prevent.
#[derive(Debug, Default)]
pub struct Condvar {
    std: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar { std: std::sync::Condvar::new() }
    }

    fn addr(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    /// Releases `guard`'s mutex, waits for a notification, reacquires.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        if guard.model {
            if let Some((sched, tid)) = current() {
                let lock = guard.lock;
                guard.inner = None; // free the real mutex while modelled-blocked
                guard.model = false; // drop releases nothing further
                drop(guard);
                // Returns with the *model* mutex reacquired; take the real
                // one directly (guaranteed uncontended) rather than via
                // `lock()`, which would model-acquire a second time.
                sched.condvar_wait(tid, self.addr(), lock.addr());
                let inner = lock.inner.lock().unwrap_or_else(PoisonError::into_inner);
                return Ok(MutexGuard { lock, inner: Some(inner), model: true });
            }
        }
        // Plain std path (outside a model).
        let lock = guard.lock;
        let inner = match guard.inner.take() {
            Some(g) => g,
            None => unreachable!("loom MutexGuard accessed after release"),
        };
        guard.model = false;
        drop(guard);
        let inner = self.std.wait(inner).unwrap_or_else(PoisonError::into_inner);
        Ok(MutexGuard { lock, inner: Some(inner), model: false })
    }

    /// Waits until `condition` returns false, rechecking on every wakeup.
    pub fn wait_while<'a, T, F>(
        &self,
        mut guard: MutexGuard<'a, T>,
        mut condition: F,
    ) -> LockResult<MutexGuard<'a, T>>
    where
        F: FnMut(&mut T) -> bool,
    {
        while condition(&mut guard) {
            guard = self.wait(guard).unwrap_or_else(PoisonError::into_inner);
        }
        Ok(guard)
    }

    /// Wakes one waiter (FIFO under the model).
    pub fn notify_one(&self) {
        if let Some((sched, tid)) = current() {
            sched.condvar_notify(tid, self.addr(), false);
        }
        self.std.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        if let Some((sched, tid)) = current() {
            sched.condvar_notify(tid, self.addr(), true);
        }
        self.std.notify_all();
    }
}

/// A model-aware `std::sync::OnceLock`: initialization is a scheduling
/// point; the stored value itself is plain std state.
#[derive(Debug, Default)]
pub struct OnceLock<T> {
    inner: std::sync::OnceLock<T>,
}

impl<T> OnceLock<T> {
    /// Creates an empty cell.
    pub const fn new() -> Self {
        OnceLock { inner: std::sync::OnceLock::new() }
    }

    /// The stored value, if initialized.
    pub fn get(&self) -> Option<&T> {
        sched_point();
        self.inner.get()
    }

    /// Stores `value` if the cell is empty.
    pub fn set(&self, value: T) -> Result<(), T> {
        sched_point();
        self.inner.set(value)
    }

    /// The stored value, initializing it with `f` if empty.
    pub fn get_or_init<F: FnOnce() -> T>(&self, f: F) -> &T {
        sched_point();
        self.inner.get_or_init(f)
    }
}
