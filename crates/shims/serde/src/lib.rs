//! Offline stand-in for `serde` (see `DESIGN.md`, "Offline dependency
//! shims").
//!
//! Instead of serde's visitor architecture, this shim routes everything
//! through a JSON-shaped [`Value`] tree: [`Serialize`] renders a type *to* a
//! `Value`, [`Deserialize`] rebuilds it *from* one. The companion
//! `serde_json` shim converts `Value` to and from JSON text, and the
//! `serde_derive` proc macro generates the two impls for structs and enums
//! with serde's standard encodings (maps for named fields, externally tagged
//! enums, transparent newtypes).

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped dynamic value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (covers every integer this workspace serializes).
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number. Non-finite values render as `null`.
    Float(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of a map value.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The items of a sequence value.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string of a string value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean of a bool value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The integer of a numeric value, if it fits in `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The integer of a numeric value, if it fits in `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::UInt(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Any numeric value as `f64` (integers convert losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// Map lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A one-word description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Deserialization failure: what was expected and what was found.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, got: &Value) -> Self {
        Error { msg: format!("expected {what}, found {}", got.kind()) }
    }

    /// A missing-field error.
    pub fn missing_field(ty: &str, field: &str) -> Self {
        Error { msg: format!("missing field `{field}` while deserializing {ty}") }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types renderable to a [`Value`].
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types rebuildable from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, failing with a descriptive [`Error`] on shape or
    /// type mismatches.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a struct field in a map value (derive-generated code helper).
pub fn field<'v>(v: &'v Value, ty: &str, name: &str) -> Result<&'v Value, Error> {
    v.get(name).ok_or_else(|| Error::missing_field(ty, name))
}

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => i64::try_from(n).map_err(|_| Error::expected(stringify!($t), v))?,
                    _ => return Err(Error::expected(stringify!($t), v)),
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!("{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

ser_int!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        match i64::try_from(*self) {
            Ok(n) => Value::Int(n),
            Err(_) => Value::UInt(*self),
        }
    }
}

impl Deserialize for u64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Int(n) => u64::try_from(n).map_err(|_| Error::expected("u64", v)),
            Value::UInt(n) => Ok(n),
            _ => Err(Error::expected("u64", v)),
        }
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::expected("bool", v)),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Float(x) => Ok(x),
            Value::Int(n) => Ok(n as f64),
            Value::UInt(n) => Ok(n as f64),
            // serde_json renders non-finite floats as null; accept the
            // roundtrip back as NaN.
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::expected("number", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::expected("single-char string", v))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::expected("single-char string", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let seq = v.as_seq().ok_or_else(|| Error::expected("array", v))?;
        seq.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, found {len}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Seq(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_seq() {
            Some([a, b]) => Ok((A::from_value(a)?, B::from_value(b)?)),
            _ => Err(Error::expected("2-element array", v)),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::{Deserialize, Error, Serialize, Value};

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(42usize.to_value(), Value::Int(42));
        assert_eq!(usize::from_value(&Value::Int(42)), Ok(42));
        assert_eq!((-1i32).to_value(), Value::Int(-1));
        assert_eq!(f32::from_value(&1.5f32.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_owned()));
    }

    #[test]
    fn mismatches_are_reported() {
        assert!(usize::from_value(&Value::Str("x".into())).is_err());
        assert!(usize::from_value(&Value::Int(-1)).is_err());
        assert_eq!(
            Error::expected("bool", &Value::Int(1)).to_string(),
            "expected bool, found integer"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()), Ok(v));
        let arr = [0.5f32, 0.75];
        assert_eq!(<[f32; 2]>::from_value(&arr.to_value()), Ok(arr));
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::Int(5)), Ok(Some(5)));
    }

    #[test]
    fn map_lookup() {
        let v = Value::Map(vec![("a".into(), Value::Int(1))]);
        assert_eq!(v.get("a"), Some(&Value::Int(1)));
        assert_eq!(v.get("b"), None);
        assert!(super::field(&v, "T", "b").is_err());
    }
}
