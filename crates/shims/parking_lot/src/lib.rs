//! Offline stand-in for `parking_lot` (see `DESIGN.md`, "Offline dependency
//! shims"): a poison-free [`Mutex`] and [`RwLock`] with `parking_lot`'s
//! guard-returning API, backed by `std::sync`.
//!
//! `parking_lot` locks have no poisoning; a panic while holding the lock
//! simply releases it. The std primitives underneath do poison, so the
//! wrappers recover the inner value from a poisoned lock instead of
//! propagating the panic — matching `parking_lot`'s semantics.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

/// A reader–writer lock whose acquisition methods return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn survives_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the lock");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
