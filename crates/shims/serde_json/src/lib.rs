//! Offline stand-in for `serde_json` (see `DESIGN.md`, "Offline dependency
//! shims"): renders the serde shim's [`Value`] tree to JSON text and parses
//! it back with a recursive-descent parser. Formatting mirrors the real
//! crate where tests can observe it: compact `{"k":v}` from [`to_string`],
//! 2-space indentation with `"k": v` from [`to_string_pretty`], non-finite
//! floats as `null`, shortest-roundtrip float printing.

use serde::{Deserialize, Serialize, Value};

/// Serialization/deserialization failure, carrying a descriptive message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

// ------------------------------------------------------------- rendering

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::UInt(n) => {
            let _ = std::fmt::Write::write_fmt(out, format_args!("{n}"));
        }
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            write_compound(out, indent, depth, '[', ']', items.len(), |o, i, d| {
                write_value(o, &items[i], indent, d);
            });
        }
        Value::Map(entries) => {
            write_compound(out, indent, depth, '{', '}', entries.len(), |o, i, d| {
                write_escaped(o, &entries[i].0);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, &entries[i].1, indent, d);
            });
        }
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    // `{:?}` on floats prints the shortest string that roundtrips; make sure
    // integral floats keep a `.0` so they reparse as floats.
    let s = format!("{x:?}");
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = std::fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::new("unexpected end of JSON"))
    }

    fn eat(&mut self, expected: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != expected {
            return Err(Error::new(format!(
                "expected `{}` at byte {}, found `{}`",
                expected as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.seq(),
            b'{' => self.map(),
            b'-' | b'0'..=b'9' => self.number(),
            c => Err(Error::new(format!("unexpected `{}` at byte {}", c as char, self.pos))),
        }
    }

    fn seq(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos, c as char
                    )))
                }
            }
        }
    }

    fn map(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.eat(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                c => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos, c as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self.bytes.get(self.pos).ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        c => return Err(Error::new(format!("invalid escape `\\{}`", c as char))),
                    }
                }
                c if c < 0x80 => out.push(c as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the sequence
                    // is valid; copy it through.
                    let start = self.pos - 1;
                    let len = utf8_len(c);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or_else(|| Error::new("truncated UTF-8 sequence"))?;
                    self.pos = start + len;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&c) = self.bytes.get(self.pos) {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(n) = text.parse::<i64>() {
            Ok(Value::Int(n))
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Value::UInt(n))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::{from_str, to_string, to_string_pretty};
    use serde::Value;

    #[test]
    fn compact_rendering() {
        let v = Value::Map(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(to_string(&v).as_deref(), Ok(r#"{"a":1,"b":[true,null]}"#));
    }

    #[test]
    fn pretty_rendering_uses_two_space_indent() {
        let v = Value::Map(vec![("caption".into(), Value::Str("demo".into()))]);
        assert_eq!(to_string_pretty(&v).as_deref(), Ok("{\n  \"caption\": \"demo\"\n}"));
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &x in &[0.1f32, 1.0, -3.25, f32::MIN_POSITIVE, 123456.78] {
            let json = to_string(&x).expect("serializes");
            let back: f32 = from_str(&json).expect("parses");
            assert_eq!(back, x, "json was {json}");
        }
        assert_eq!(to_string(&f64::NAN).as_deref(), Ok("null"));
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f32).as_deref(), Ok("2.0"));
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\n\"quoted\"\tπ".to_string();
        let json = to_string(&s).expect("serializes");
        let back: String = from_str(&json).expect("parses");
        assert_eq!(back, s);
    }

    #[test]
    fn parse_errors_are_descriptive() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("12 34").is_err());
        assert!(from_str::<u32>(r#""nope""#).is_err());
    }

    #[test]
    fn nested_value_roundtrip() {
        let v = Value::Map(vec![(
            "rows".into(),
            Value::Seq(vec![Value::Map(vec![("x".into(), Value::Float(0.5))])]),
        )]);
        let back: Value = from_str(&to_string(&v).expect("serializes")).expect("parses");
        assert_eq!(back, v);
    }
}
