//! Workspace static-analysis driver.
//!
//! `cargo xtask check` runs, in order:
//!
//! 1. `cargo fmt --all --check` — formatting drift fails the run.
//! 2. `cargo clippy --workspace --all-targets` with `-D warnings`, on top of
//!    the workspace lint wall (`[workspace.lints]` in the root manifest).
//! 3. `cargo build --workspace --all-targets` — everything must compile.
//! 4. Custom source lints that rustc/clippy cannot express (see below).
//! 5. An integration-test floor: every first-party library crate must ship
//!    at least one integration test target (`tests/` files or `[[test]]`
//!    manifest entries); shims and the binary-only `xtask` are exempt.
//!
//! The custom lints, run standalone via `cargo xtask lint`:
//!
//! * `no-unwrap` — no `.unwrap()` / `.expect(` outside `#[cfg(test)]` in the
//!   library sources of `vc-nn`, `vc-env` and `vc-rl` (the crates whose
//!   panics would tear down employee threads).
//! * `lock-across-send` — no `parking_lot`/std `Mutex` guard bound by `let`
//!   still live when a channel `.send(` runs; holding a lock across a
//!   blocking send is the chief/employee deadlock shape.
//! * `pub-docs` — every `pub` item in `vc-nn` and `vc-rl` carries a doc
//!   comment (stricter than `missing_docs`: it also fires inside modules
//!   that allow the rustc lint).
//! * `no-process-exit` — no `std::process::exit` outside `src/bin/`;
//!   library code must return typed errors (an exit from an employee thread
//!   would bypass the chief's panic containment and respawn machinery).
//! * `no-raw-thread` — no `thread::spawn(` / `thread::scope(` outside
//!   `crates/nn/src/ops/pool.rs`: all kernel parallelism must route through
//!   the persistent pool (per-call spawns were the 15× regression the pool
//!   replaced). Long-lived employee threads use `thread::Builder`, which the
//!   token scan deliberately permits.
//! * `atomic-ordering` — every `Ordering::Relaxed` in first-party library
//!   sources carries a `// ordering:` justification comment on the same or
//!   the preceding line. Relaxed is correct for standalone counters and
//!   flags but silently wrong the moment other memory is published through
//!   the atomic; the comment forces that argument to be written down where
//!   reviewers (and `cargo xtask analyze`) can check it. See `DESIGN.md`
//!   §13 for the workspace memory-model contracts.
//! * `condvar-predicate` — no bare `.wait(` on a condvar: waits must go
//!   through `wait_while` (or another predicate loop), because a bare wait
//!   whose notification fired early blocks forever. The loom suite
//!   demonstrates exactly this failure (`finds_lost_wakeup_on_bare_wait`
//!   in the `loom` shim's self-tests).
//! * `no-static-mut` — no `static mut` anywhere in the workspace, shims
//!   included: every access is unsafe and unsynchronized by construction;
//!   use atomics, `OnceLock`, or `Mutex` statics instead.
//! * `unsafe-allow` — the workspace denies `unsafe_code`, so the only door
//!   into `unsafe` is an `allow(unsafe_code)` attribute; every such
//!   attribute must be allow-listed, keeping the sanctioned-unsafe modules
//!   (currently only the SIMD micro-kernel, `crates/nn/src/ops/simd.rs`)
//!   an explicit, reviewed list.
//!
//! Grandfathered findings live in `xtask-allow.txt` at the repo root, one
//! per line as `<lint> <path>` or `<lint> <path>:<line>`; `#` starts a
//! comment. Entries that no longer match any finding fail the run (stale
//! allows hide regressions) — prune them together with the fix.
//!
//! `cargo xtask analyze [--loom|--tsan|--miri] [--strict]` runs the dynamic
//! concurrency analyses (loom model checking on stable; ThreadSanitizer and
//! Miri on a nightly toolchain, pinned via `VC_NIGHTLY` in CI). Without
//! flags, all three run. Missing prerequisites (no nightly, no rust-src /
//! miri component — the usual state offline) skip that analysis with a
//! note; `--strict` turns a skip into a failure and is what CI uses.
//!
//! `cargo xtask regen-golden` regenerates the golden-trace fixtures — the
//! trainer trace (`tests/fixtures/golden_trace.json`) and the per-family
//! scenario traces (`tests/fixtures/golden_trace_<family>.json`) — from the
//! current code. Run it when a metric-affecting change is intentional, and
//! commit the new fixtures with the change.
//!
//! `cargo xtask bench` runs the kernel/episode benchmark suite and appends
//! to the `BENCH_kernels.json` trajectory at the repo root; `--smoke` runs
//! minimal iterations against a throwaway file under `target/`, validates
//! the artifact schema and gates against the last committed full run (the
//! CI `bench-smoke` job): a matched flop-carrying record (`matmul_*`,
//! `conv2d_*`) fails below 75% of the committed GFLOP/s, and a matched
//! zero-flop record (rollout/PPO/episode timings) fails above 2× the
//! committed `ns_per_iter`.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let task = std::env::args().nth(1).unwrap_or_else(|| "help".to_owned());
    let root = repo_root();
    let ok = match task.as_str() {
        "check" => {
            run_cargo(&root, &["fmt", "--all", "--check"])
                && run_cargo(
                    &root,
                    &["clippy", "--workspace", "--all-targets", "--", "-D", "warnings"],
                )
                && run_cargo(&root, &["build", "--workspace", "--all-targets"])
                && run_source_lints(&root)
                && check_integration_tests(&root)
        }
        "fmt" => run_cargo(&root, &["fmt", "--all", "--check"]),
        "clippy" => {
            run_cargo(&root, &["clippy", "--workspace", "--all-targets", "--", "-D", "warnings"])
        }
        "build" => run_cargo(&root, &["build", "--workspace", "--all-targets"]),
        "lint" => run_source_lints(&root),
        "tests-present" => check_integration_tests(&root),
        "regen-golden" => {
            run_cargo(
                &root,
                &[
                    "test",
                    "--release",
                    "--package",
                    "drl-cews",
                    "--test",
                    "golden_trace",
                    "--",
                    "--ignored",
                    "regen_golden_fixture",
                    "--nocapture",
                ],
            ) && run_cargo(
                &root,
                &[
                    "test",
                    "--release",
                    "--package",
                    "drl-cews",
                    "--test",
                    "golden_trace_families",
                    "--",
                    "--ignored",
                    "regen_family_fixtures",
                    "--nocapture",
                ],
            )
        }
        "bench" => {
            let smoke = std::env::args().any(|a| a == "--smoke");
            run_bench(&root, smoke)
        }
        "analyze" => {
            let rest: Vec<String> = std::env::args().skip(2).collect();
            let strict = rest.iter().any(|a| a == "--strict");
            let mut which: Vec<&str> = Vec::new();
            for flag in ["--loom", "--tsan", "--miri"] {
                if rest.iter().any(|a| a == flag) {
                    which.push(&flag[2..]);
                }
            }
            if which.is_empty() {
                which = vec!["loom", "tsan", "miri"];
            }
            run_analyze(&root, &which, strict)
        }
        _ => {
            eprintln!(
                "usage: cargo xtask <task>\n\n\
                 tasks:\n  \
                 check   fmt + clippy + build + custom source lints\n  \
                 fmt     cargo fmt --all --check\n  \
                 clippy  cargo clippy --workspace --all-targets -D warnings\n  \
                 build   cargo build --workspace --all-targets\n  \
                 lint    custom source lints only\n  \
                 tests-present  fail if a first-party library crate has no\n          \
                 integration tests\n  \
                 regen-golden   regenerate tests/fixtures/golden_trace.json\n          \
                 and tests/fixtures/golden_trace_<family>.json from the\n          \
                 current code\n  \
                 bench   kernel/episode benchmarks -> BENCH_kernels.json,\n          \
                 then the serve_load daemon chaos bench -> BENCH_serve.json\n          \
                 (--smoke: minimal iterations, schema check + matmul\n          \
                 regression gate vs the last committed full run)\n  \
                 analyze dynamic concurrency analyses; flags select a\n          \
                 subset: --loom (model checking, stable), --tsan\n          \
                 (ThreadSanitizer, nightly), --miri (nightly).\n          \
                 --strict fails on missing prerequisites (CI)"
            );
            return ExitCode::from(2);
        }
    };
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Repo root, two levels above this crate's manifest.
fn repo_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(Path::parent).map(Path::to_path_buf).unwrap_or(manifest)
}

/// Runs one cargo subprocess, echoing the command line; true on success.
fn run_cargo(root: &Path, args: &[&str]) -> bool {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_owned());
    run_cmd(root, &cargo, args, &[])
}

/// Runs one subprocess with extra environment variables; true on success.
fn run_cmd(root: &Path, program: &str, args: &[&str], envs: &[(&str, &str)]) -> bool {
    let mut line = String::new();
    for (k, v) in envs {
        line.push_str(&format!("{k}={v} "));
    }
    eprintln!("xtask: {line}{program} {}", args.join(" "));
    let mut cmd = Command::new(program);
    cmd.args(args).current_dir(root);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    match cmd.status() {
        Ok(s) if s.success() => true,
        Ok(s) => {
            eprintln!("xtask: {program} {} failed with {s}", args.join(" "));
            false
        }
        Err(e) => {
            eprintln!("xtask: could not spawn {program}: {e}");
            false
        }
    }
}

/// The nightly toolchain used for sanitizer/miri analyses: `VC_NIGHTLY`
/// when set (CI pins it there), plain `nightly` otherwise.
fn nightly_toolchain() -> String {
    std::env::var("VC_NIGHTLY").unwrap_or_else(|_| "nightly".to_owned())
}

/// Captures stdout of a command; `None` if it failed to run or exited
/// non-zero.
fn capture(root: &Path, program: &str, args: &[&str]) -> Option<String> {
    let out = Command::new(program).args(args).current_dir(root).output().ok()?;
    out.status.success().then(|| String::from_utf8_lossy(&out.stdout).into_owned())
}

/// Reports an analysis whose prerequisite is missing: a failure under
/// `--strict` (CI must run everything), a logged skip otherwise.
fn skip_or_fail(strict: bool, what: &str, why: &str) -> bool {
    if strict {
        eprintln!("xtask: analyze {what}: MISSING prerequisite ({why}) and --strict is set");
        false
    } else {
        eprintln!("xtask: analyze {what}: skipped ({why})");
        true
    }
}

/// Dynamic concurrency analyses — see the crate docs. `which` holds any of
/// `"loom"` / `"tsan"` / `"miri"`.
fn run_analyze(root: &Path, which: &[&str], strict: bool) -> bool {
    let mut ok = true;
    for w in which {
        ok &= match *w {
            "loom" => analyze_loom(root),
            "tsan" => analyze_tsan(root, strict),
            "miri" => analyze_miri(root, strict),
            other => {
                eprintln!("xtask: unknown analysis {other}");
                false
            }
        };
    }
    ok
}

/// The loom model-checking suites (`tests/loom_*.rs`), plus the shim's own
/// checker self-tests. Runs on stable with `--cfg loom`; a separate target
/// dir keeps the flag from invalidating the main build cache, and
/// `--test-threads=1` serializes models because the pool/arena counters are
/// process-wide.
fn analyze_loom(root: &Path) -> bool {
    let envs: &[(&str, &str)] = &[("RUSTFLAGS", "--cfg loom"), ("CARGO_TARGET_DIR", "target/loom")];
    run_cmd(root, "cargo", &["test", "--release", "-p", "loom", "--lib"], envs)
        && run_cmd(
            root,
            "cargo",
            &[
                "test",
                "--release",
                "-p",
                "vc-nn",
                "--test",
                "loom_pool",
                "--test",
                "loom_arena",
                "--",
                "--test-threads=1",
            ],
            envs,
        )
        && run_cmd(
            root,
            "cargo",
            &[
                "test",
                "--release",
                "-p",
                "vc-telemetry",
                "--test",
                "loom_registry",
                "--",
                "--test-threads=1",
            ],
            envs,
        )
}

/// ThreadSanitizer over the concurrent crates' test suites. Needs a nightly
/// with `rust-src` (`-Zbuild-std` instruments std itself, which TSan
/// requires to avoid false positives on std's own synchronization).
fn analyze_tsan(root: &Path, strict: bool) -> bool {
    let tc = nightly_toolchain();
    let Some(version) = capture(root, "rustup", &["run", &tc, "rustc", "--version"]) else {
        return skip_or_fail(strict, "tsan", &format!("toolchain {tc} unavailable"));
    };
    let components =
        capture(root, "rustup", &["component", "list", "--installed", "--toolchain", &tc])
            .unwrap_or_default();
    if !components.lines().any(|l| l.starts_with("rust-src")) {
        return skip_or_fail(strict, "tsan", &format!("rust-src not installed for {tc}"));
    }
    let Some(host) = capture(root, "rustup", &["run", &tc, "rustc", "-vV"])
        .and_then(|v| v.lines().find_map(|l| l.strip_prefix("host: ").map(str::to_owned)))
    else {
        return skip_or_fail(strict, "tsan", "could not determine host triple");
    };
    eprintln!("xtask: analyze tsan on {} ({host})", version.trim());
    run_cmd(
        root,
        "rustup",
        &[
            "run",
            &tc,
            "cargo",
            "test",
            "-Zbuild-std",
            "--target",
            &host,
            "-p",
            "vc-nn",
            "-p",
            "vc-telemetry",
            "--lib",
            "--tests",
        ],
        &[
            ("RUSTFLAGS", "-Zsanitizer=thread"),
            ("RUSTDOCFLAGS", "-Zsanitizer=thread"),
            ("CARGO_TARGET_DIR", "target/tsan"),
        ],
    )
}

/// Miri over the pointer/alias-heavy units: the arena (recycled `Vec`
/// buffers), the packed-GEMM kernel (`gemm` + `simd` unit tests — Miri
/// compiles the scalar fallback, which exercises the same packing offsets
/// and tile dispatch as the AVX2 path), and the telemetry metrics. Leaks
/// are expected — the kernel pool's shared state is deliberately
/// `Box::leak`ed and worker threads never join — so the leak checker is
/// off.
fn analyze_miri(root: &Path, strict: bool) -> bool {
    let tc = nightly_toolchain();
    if capture(root, "rustup", &["run", &tc, "cargo", "miri", "--version"]).is_none() {
        return skip_or_fail(strict, "miri", &format!("cargo miri unavailable on {tc}"));
    }
    let envs: &[(&str, &str)] =
        &[("MIRIFLAGS", "-Zmiri-ignore-leaks"), ("CARGO_TARGET_DIR", "target/miri")];
    for filter in ["arena", "gemm", "simd"] {
        if !run_cmd(
            root,
            "rustup",
            &["run", &tc, "cargo", "miri", "test", "-p", "vc-nn", "--lib", "--", filter],
            envs,
        ) {
            return false;
        }
    }
    run_cmd(
        root,
        "rustup",
        &["run", &tc, "cargo", "miri", "test", "-p", "vc-telemetry", "--lib"],
        envs,
    )
}

/// First-party library crates covered by the integration-test floor. The
/// shims are exempt (they exist to satisfy the offline build, not to be
/// tested as products) and `xtask` itself is a binary-only tool crate.
const TESTED_CRATES: &[&str] = &[
    "crates/nn",
    "crates/env",
    "crates/rl",
    "crates/core",
    "crates/curiosity",
    "crates/baselines",
    "crates/bench",
    "crates/telemetry",
    "crates/serve",
];

/// Fails if any first-party library crate ships zero integration tests.
///
/// A crate's integration tests are the `.rs` files under its `tests/`
/// directory plus any explicit `[[test]]` targets in its manifest (the root
/// `tests/` files are wired into `crates/core` that way). Unit tests don't
/// count: they compile inside the library and can't catch linkage or
/// public-API regressions.
fn check_integration_tests(root: &Path) -> bool {
    eprintln!("xtask: integration-test presence");
    let mut ok = true;
    for rel in TESTED_CRATES {
        let dir = root.join(rel);
        let from_dir = rust_files(&dir.join("tests")).len();
        let from_manifest = fs::read_to_string(dir.join("Cargo.toml"))
            .map(|t| t.lines().filter(|l| l.trim() == "[[test]]").count())
            .unwrap_or(0);
        let total = from_dir + from_manifest;
        if total == 0 {
            eprintln!("xtask: {rel} has no integration tests (tests/ empty, no [[test]] targets)");
            ok = false;
        } else {
            eprintln!("xtask:   {rel}: {total} integration test target(s)");
        }
    }
    if !ok {
        eprintln!("xtask: every first-party library crate needs at least one integration test");
    }
    ok
}

/// Runs the kernel/episode benchmark binary and validates the trajectory
/// artifact it emits. Smoke mode writes a throwaway file under `target/`
/// (minimal iterations, schema check only); a full run appends to
/// `BENCH_kernels.json` at the repo root.
fn run_bench(root: &Path, smoke: bool) -> bool {
    let out = if smoke {
        root.join("target").join("BENCH_kernels.smoke.json")
    } else {
        root.join("BENCH_kernels.json")
    };
    if smoke {
        // A stale smoke artifact would mask a bench that silently wrote
        // nothing; always start from scratch.
        let _ = fs::remove_file(&out);
    }
    let out_str = out.display().to_string();
    let mut args =
        vec!["run", "--release", "--package", "vc-bench", "--bin", "bench_kernels", "--"];
    if smoke {
        args.push("--smoke");
    }
    args.extend_from_slice(&["--out", &out_str]);
    if !run_cargo(root, &args) {
        return false;
    }
    if !validate_bench_artifact(&out) {
        return false;
    }
    if smoke && !check_bench_regression(root, &out) {
        return false;
    }
    run_serve_bench(root, smoke)
}

/// Runs the `serve_load` daemon load/fault-injection benchmark and
/// validates the trajectory it emits. Smoke mode writes a throwaway file
/// under `target/`; a full run appends to `BENCH_serve.json` at the repo
/// root. The binary itself enforces the behavioural invariants (every
/// request answered, corrupt reloads rejected) and exits non-zero on any
/// violation, so a pass here is a real chaos result, not just a schema
/// check.
fn run_serve_bench(root: &Path, smoke: bool) -> bool {
    let out = if smoke {
        root.join("target").join("BENCH_serve.smoke.json")
    } else {
        root.join("BENCH_serve.json")
    };
    if smoke {
        let _ = fs::remove_file(&out);
    }
    let out_str = out.display().to_string();
    let mut args = vec!["run", "--release", "--package", "vc-bench", "--bin", "serve_load", "--"];
    if smoke {
        args.push("--smoke");
    }
    args.extend_from_slice(&["--out", &out_str]);
    if !run_cargo(root, &args) {
        return false;
    }
    validate_serve_artifact(&out)
}

/// Structural check of the serving trajectory: a JSON array whose records
/// carry the latency percentiles and shed rate.
fn validate_serve_artifact(path: &Path) -> bool {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask: serve artifact {} unreadable: {e}", path.display());
            return false;
        }
    };
    if !text.trim_start().starts_with('[') {
        eprintln!("xtask: serve artifact {} is not a JSON array", path.display());
        return false;
    }
    for key in ["\"p50_us\"", "\"p99_us\"", "\"shed_rate\"", "\"schema_version\""] {
        if !text.contains(key) {
            eprintln!("xtask: serve artifact {} missing key {key}", path.display());
            return false;
        }
    }
    eprintln!("xtask: serve artifact {} ok ({} bytes)", path.display(), text.len());
    true
}

/// Fraction of a committed GFLOP/s number a smoke run must reach; below
/// this the bench gate fails.
const BENCH_REGRESSION_FLOOR: f64 = 0.75;

/// Slowdown factor a zero-flop (time-gated) record may reach before the
/// bench gate fails. Looser than the GFLOP/s floor on purpose: the
/// zero-flop records (`rollout_step_*`, `ppo_update`, `train_episode`)
/// run only a couple of iterations in smoke mode, so their ns/iter is
/// noisy; a 2× wall still catches real (order-of-magnitude) regressions
/// without flapping on scheduler jitter.
const BENCH_TIME_REGRESSION_FACTOR: f64 = 2.0;

/// Gates a smoke run against the last committed *full* run in
/// `BENCH_kernels.json`.
///
/// Two gate branches, so no record class can regress silently:
///
/// * **Throughput-gated:** `matmul_*` and `conv2d_*` records (the ones with
///   real FLOP counts) must reach [`BENCH_REGRESSION_FLOOR`] of the
///   committed GFLOP/s. Matmuls run at full iteration count even in smoke
///   mode, so their numbers are statistically meaningful.
/// * **Time-gated:** every record with `gflops == 0` (`rollout_step_*`,
///   `ppo_update`, `train_episode`, `chief_stress`) must keep its
///   `ns_per_iter` under [`BENCH_TIME_REGRESSION_FACTOR`] × the committed
///   value. The gate only catches slowdowns, so a record whose smoke
///   workload is lighter than the full one can only pass — except that
///   workload-bearing shapes (e.g. `chief_stress`'s `rounds5` vs
///   `rounds50`) differ between modes and therefore fall into the
///   unmatched-record skip below rather than comparing apples to oranges.
///
/// Records are matched on exact `(op, shape, threads)`; ops present on only
/// one side (a new benchmark, or one that was renamed) are skipped with a
/// note. A missing or full-run-free trajectory skips the gate — there is
/// nothing to regress against.
fn check_bench_regression(root: &Path, smoke_path: &Path) -> bool {
    let committed_path = root.join("BENCH_kernels.json");
    let Some(committed) = last_run_results(&committed_path, Some("full")) else {
        eprintln!(
            "xtask: bench gate skipped: no committed full run in {}",
            committed_path.display()
        );
        return true;
    };
    let Some(smoke) = last_run_results(smoke_path, None) else {
        eprintln!("xtask: bench gate: smoke artifact {} has no runs", smoke_path.display());
        return false;
    };

    let mut ok = true;
    let mut compared = 0usize;
    for (key, smoke_gflops, smoke_ns) in &smoke {
        let Some((committed_gflops, committed_ns)) =
            committed.iter().find(|(k, _, _)| k == key).map(|(_, g, t)| (*g, *t))
        else {
            eprintln!(
                "xtask: bench gate: {} {} t{} has no committed baseline (new record?)",
                key.0, key.1, key.2
            );
            continue;
        };
        let flop_gated = key.0.starts_with("matmul") || key.0.starts_with("conv2d");
        if flop_gated {
            if *smoke_gflops <= 0.0 || committed_gflops <= 0.0 {
                eprintln!(
                    "xtask: bench gate: {} {} t{} lacks GFLOP/s on one side; skipped",
                    key.0, key.1, key.2
                );
                continue;
            }
            compared += 1;
            let floor = committed_gflops * BENCH_REGRESSION_FLOOR;
            if *smoke_gflops < floor {
                eprintln!(
                    "xtask: bench gate FAIL: {} {} t{}: {smoke_gflops:.2} GFLOP/s < 75% of \
                     committed {committed_gflops:.2}",
                    key.0, key.1, key.2
                );
                ok = false;
            } else {
                eprintln!(
                    "xtask: bench gate ok: {} {} t{}: {smoke_gflops:.2} GFLOP/s vs committed \
                     {committed_gflops:.2}",
                    key.0, key.1, key.2
                );
            }
        } else {
            if *smoke_ns <= 0.0 || committed_ns <= 0.0 {
                continue;
            }
            compared += 1;
            let wall = committed_ns * BENCH_TIME_REGRESSION_FACTOR;
            if *smoke_ns > wall {
                eprintln!(
                    "xtask: bench gate FAIL: {} {} t{}: {smoke_ns:.0} ns/iter > 2x committed \
                     {committed_ns:.0}",
                    key.0, key.1, key.2
                );
                ok = false;
            } else {
                eprintln!(
                    "xtask: bench gate ok: {} {} t{}: {smoke_ns:.0} ns/iter vs committed \
                     {committed_ns:.0}",
                    key.0, key.1, key.2
                );
            }
        }
    }
    if compared == 0 {
        eprintln!("xtask: bench gate: no comparable records; treating as pass");
    }
    ok
}

/// `(op, shape, threads)` identity of one bench record, paired with its
/// measured GFLOP/s and ns/iter.
type BenchRecord = ((String, String, u64), f64, f64);

/// Parses a bench trajectory and returns
/// `((op, shape, threads), gflops, ns_per_iter)` for every result of the
/// last run — optionally the last run with the given `mode` — or `None`
/// when the file or a matching run is absent.
fn last_run_results(path: &Path, mode: Option<&str>) -> Option<Vec<BenchRecord>> {
    let text = fs::read_to_string(path).ok()?;
    let v: serde::Value = serde_json::from_str(&text).ok()?;
    let runs = v.as_seq()?;
    let run = runs
        .iter()
        .rev()
        .find(|r| mode.is_none_or(|m| r.get("mode").and_then(serde::Value::as_str) == Some(m)))?;
    let results = run.get("results")?.as_seq()?;
    let mut out = Vec::new();
    for rec in results {
        let op = rec.get("op")?.as_str()?.to_owned();
        let shape = rec.get("shape")?.as_str()?.to_owned();
        let threads = rec.get("threads")?.as_u64()?;
        let gflops = rec.get("gflops")?.as_f64()?;
        let ns_per_iter = rec.get("ns_per_iter")?.as_f64()?;
        out.push(((op, shape, threads), gflops, ns_per_iter));
    }
    Some(out)
}

/// Structural check of the benchmark trajectory: a JSON array whose text
/// carries every per-result field. The bench binary performs the full
/// parse-level validation itself; this guards the artifact actually written
/// to disk (catching an empty or truncated file).
fn validate_bench_artifact(path: &Path) -> bool {
    let text = match fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("xtask: bench artifact {} unreadable: {e}", path.display());
            return false;
        }
    };
    if !text.trim_start().starts_with('[') {
        eprintln!("xtask: bench artifact {} is not a JSON array", path.display());
        return false;
    }
    for key in ["\"op\"", "\"shape\"", "\"threads\"", "\"iters\"", "\"ns_per_iter\"", "\"gflops\""]
    {
        if !text.contains(key) {
            eprintln!("xtask: bench artifact {} missing key {key}", path.display());
            return false;
        }
    }
    eprintln!("xtask: bench artifact {} ok ({} bytes)", path.display(), text.len());
    true
}

/// One custom-lint violation.
struct Finding {
    lint: &'static str,
    path: PathBuf,
    line: usize,
    msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path.display(), self.line, self.lint, self.msg)
    }
}

/// Which custom lints [`lint_file`] applies to a file.
#[derive(Clone, Copy, Default)]
struct Checks {
    /// `no-unwrap`.
    unwrap: bool,
    /// `pub-docs`.
    docs: bool,
    /// `no-process-exit`.
    exit: bool,
    /// `no-raw-thread`.
    threads: bool,
    /// `atomic-ordering`.
    atomics: bool,
    /// `condvar-predicate`.
    condvar: bool,
    /// `no-static-mut`.
    static_mut: bool,
    /// `unsafe-allow`.
    unsafe_allow: bool,
}

/// Runs every custom lint over the workspace sources; true when clean.
fn run_source_lints(root: &Path) -> bool {
    eprintln!("xtask: custom source lints");
    let allow = load_allowlist(root);
    let mut findings = Vec::new();

    // no-unwrap: library sources of the crates whose panics kill employees
    // (telemetry runs inside chief and employee hot paths, so it counts).
    for dir in ["crates/nn/src", "crates/env/src", "crates/rl/src", "crates/telemetry/src"] {
        for file in rust_files(&root.join(dir)) {
            lint_file(&file, root, &mut findings, Checks { unwrap: true, ..Checks::default() });
        }
    }
    // lock-across-send, no-process-exit, no-raw-thread, atomic-ordering and
    // condvar-predicate run over every first-party crate (the shims
    // implement the locking primitives themselves and are exempt); pub-docs
    // only where the policy demands it: vc-nn and vc-rl. Binaries under
    // src/bin/ may exit; libraries must return errors. The persistent
    // kernel pool is the one module allowed to create threads.
    for dir in [
        "crates/nn/src",
        "crates/env/src",
        "crates/rl/src",
        "crates/core/src",
        "crates/curiosity/src",
        "crates/baselines/src",
        "crates/bench/src",
        "crates/telemetry/src",
        "crates/serve/src",
    ] {
        let want_docs = dir == "crates/nn/src" || dir == "crates/rl/src";
        for file in rust_files(&root.join(dir)) {
            let in_bin = file.components().any(|c| c.as_os_str() == "bin");
            let is_pool = file.ends_with("crates/nn/src/ops/pool.rs");
            lint_file(
                &file,
                root,
                &mut findings,
                Checks {
                    docs: want_docs,
                    exit: !in_bin,
                    threads: !is_pool,
                    atomics: true,
                    condvar: true,
                    static_mut: true,
                    unsafe_allow: true,
                    unwrap: false,
                },
            );
        }
    }
    // no-static-mut alone is workspace-wide: shims and xtask included (a
    // `static mut` is UB-prone everywhere, offline stand-in or not).
    for dir in ["crates/shims", "crates/xtask/src"] {
        for file in rust_files(&root.join(dir)) {
            lint_file(&file, root, &mut findings, Checks { static_mut: true, ..Checks::default() });
        }
    }

    let mut used = vec![false; allow.len()];
    let mut failed = 0usize;
    for f in &findings {
        if let Some(idx) = allow_match(&allow, f) {
            used[idx] = true;
            continue;
        }
        eprintln!("{f}");
        failed += 1;
    }
    // A stale allow entry no longer matches anything: the finding was
    // fixed (prune the entry) or the path moved (it now hides a real
    // finding elsewhere). Either way it must not linger.
    for (i, entry) in allow.iter().enumerate() {
        if !used[i] {
            let loc = match entry.2 {
                Some(line) => format!("{}:{line}", entry.1),
                None => entry.1.clone(),
            };
            eprintln!(
                "xtask: stale allowlist entry: `{} {loc}` matches no finding — prune it",
                entry.0
            );
            failed += 1;
        }
    }
    if failed == 0 {
        eprintln!("xtask: source lints clean ({} allow-listed entries)", allow.len());
        true
    } else {
        eprintln!("xtask: {failed} source-lint finding(s); see xtask-allow.txt to grandfather");
        false
    }
}

/// Allowlist entries: `(lint, path, optional line)`.
type Allow = Vec<(String, String, Option<usize>)>;

/// Parses `xtask-allow.txt` (missing file = empty allowlist).
fn load_allowlist(root: &Path) -> Allow {
    let Ok(text) = fs::read_to_string(root.join("xtask-allow.txt")) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(lint), Some(loc)) = (parts.next(), parts.next()) else {
            continue;
        };
        match loc.rsplit_once(':') {
            Some((path, ln)) if ln.chars().all(|c| c.is_ascii_digit()) => {
                out.push((lint.to_owned(), path.to_owned(), ln.parse().ok()));
            }
            _ => out.push((lint.to_owned(), loc.to_owned(), None)),
        }
    }
    out
}

/// The index of the allowlist entry grandfathering a finding, if any (used
/// for stale-entry detection: every entry must match at least one finding).
fn allow_match(allow: &Allow, f: &Finding) -> Option<usize> {
    let path = f.path.to_string_lossy();
    allow.iter().position(|(lint, p, line)| {
        lint == f.lint && path == p.as_str() && line.is_none_or(|l| l == f.line)
    })
}

/// Whether a finding is grandfathered by the allowlist.
#[cfg(test)]
fn allowed(allow: &Allow, f: &Finding) -> bool {
    allow_match(allow, f).is_some()
}

/// All `.rs` files under `dir`, recursively, in stable order.
fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let Ok(entries) = fs::read_dir(&d) else { continue };
        for entry in entries.flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else if p.extension().is_some_and(|e| e == "rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    out
}

/// A live `let`-bound lock guard.
struct LockGuard {
    name: String,
    depth: usize,
    line: usize,
}

/// Scans one file for the custom lints, appending findings.
///
/// `checks` selects the per-crate lints; the lock-across-send lint always
/// runs except on the workspace-wide `no-static-mut`-only pass (where
/// nothing else in `checks` is set either).
fn lint_file(file: &Path, root: &Path, findings: &mut Vec<Finding>, checks: Checks) {
    let Checks {
        unwrap: check_unwrap,
        docs: check_docs,
        exit: check_exit,
        threads: check_threads,
        atomics: check_atomics,
        condvar: check_condvar,
        static_mut: check_static_mut,
        unsafe_allow: check_unsafe_allow,
    } = checks;
    let Ok(text) = fs::read_to_string(file) else { return };
    let rel = file.strip_prefix(root).unwrap_or(file).to_path_buf();
    let raw: Vec<&str> = text.lines().collect();

    // Strip comments and string contents so token scans can't false-match.
    let mut stripped = Vec::with_capacity(raw.len());
    let mut in_block_comment = false;
    for line in &raw {
        let (s, still) = strip_line(line, in_block_comment);
        in_block_comment = still;
        stripped.push(s);
    }

    let mut depth = 0usize;
    let mut cfg_test_pending = false;
    let mut test_depth: Option<usize> = None;
    let mut guards: Vec<LockGuard> = Vec::new();

    for (i, s) in stripped.iter().enumerate() {
        let lineno = i + 1;
        let in_test = test_depth.is_some();
        let trimmed = s.trim();

        if trimmed.contains("#[cfg(test)]") {
            cfg_test_pending = true;
        }

        // Even inside #[cfg(test)]: an exit tears down the whole test
        // harness (or an employee thread) instead of unwinding.
        if check_exit && s.contains("process::exit") {
            findings.push(Finding {
                lint: "no-process-exit",
                path: rel.clone(),
                line: lineno,
                msg: "std::process::exit outside src/bin/; return a typed error instead".to_owned(),
            });
        }

        // Even inside #[cfg(test)]: the workspace denies `unsafe_code`, so
        // the only door into `unsafe` is an `allow(unsafe_code)` attribute.
        // Every such attribute must be allow-listed in xtask-allow.txt,
        // which keeps the set of sanctioned-unsafe modules (currently just
        // the SIMD micro-kernel) an explicit, reviewed list.
        if check_unsafe_allow && s.contains("allow(unsafe_code)") {
            findings.push(Finding {
                lint: "unsafe-allow",
                path: rel.clone(),
                line: lineno,
                msg: "allow(unsafe_code) outside the sanctioned-unsafe allowlist; add an \
                      `unsafe-allow` entry to xtask-allow.txt after review"
                    .to_owned(),
            });
        }

        // Even inside #[cfg(test)]: a `static mut` is unsynchronized by
        // construction wherever it lives. Declarations only (they always
        // start a line, possibly behind a visibility modifier).
        if check_static_mut
            && (trimmed.starts_with("static mut ")
                || trimmed.starts_with("pub static mut ")
                || trimmed.starts_with("pub(crate) static mut ")
                || trimmed.starts_with("pub(super) static mut "))
        {
            findings.push(Finding {
                lint: "no-static-mut",
                path: rel.clone(),
                line: lineno,
                msg: "static mut is unsynchronized and unsafe to touch; use an atomic, \
                      OnceLock, or Mutex static"
                    .to_owned(),
            });
        }

        if !in_test {
            if check_threads && (s.contains("thread::spawn(") || s.contains("thread::scope(")) {
                findings.push(Finding {
                    lint: "no-raw-thread",
                    path: rel.clone(),
                    line: lineno,
                    msg: "raw thread::spawn/thread::scope outside the kernel pool; \
                          route parallel work through vc_nn::ops::pool"
                        .to_owned(),
                });
            }
            if check_atomics && s.contains("Ordering::Relaxed") {
                // Justification comments live in the *raw* text (stripping
                // removes them): accepted on the same line or anywhere in
                // the contiguous `//` comment block directly above.
                let mut justified = raw[i].contains("// ordering:");
                let mut j = i;
                while !justified && j > 0 {
                    j -= 1;
                    let t = raw[j].trim_start();
                    if !t.starts_with("//") {
                        break;
                    }
                    justified = t.contains("ordering:");
                }
                if !justified {
                    findings.push(Finding {
                        lint: "atomic-ordering",
                        path: rel.clone(),
                        line: lineno,
                        msg: "Ordering::Relaxed without a `// ordering:` justification on \
                              this or the preceding line"
                            .to_owned(),
                    });
                }
            }
            if check_condvar && s.contains(".wait(") {
                findings.push(Finding {
                    lint: "condvar-predicate",
                    path: rel.clone(),
                    line: lineno,
                    msg: "bare .wait( — use wait_while (a bare wait whose notify fired \
                          early blocks forever)"
                        .to_owned(),
                });
            }
            if check_unwrap && (s.contains(".unwrap()") || s.contains(".expect(")) {
                findings.push(Finding {
                    lint: "no-unwrap",
                    path: rel.clone(),
                    line: lineno,
                    msg: "unwrap()/expect() outside #[cfg(test)]; return a typed error instead"
                        .to_owned(),
                });
            }
            if check_docs {
                if let Some(item) = pub_item(trimmed) {
                    if !has_doc(&stripped, &raw, i) {
                        findings.push(Finding {
                            lint: "pub-docs",
                            path: rel.clone(),
                            line: lineno,
                            msg: format!("public {item} without a doc comment"),
                        });
                    }
                }
            }
            // Track `let guard = ... .lock()` bindings (temporaries that are
            // not `let`-bound drop at the end of the statement and are fine).
            if s.contains(".lock()") {
                if let Some(name) = let_binding(trimmed) {
                    guards.push(LockGuard { name, depth, line: lineno });
                }
            }
            if s.contains(".send(") {
                if let Some(g) = guards.last() {
                    findings.push(Finding {
                        lint: "lock-across-send",
                        path: rel.clone(),
                        line: lineno,
                        msg: format!(
                            "channel send while lock guard `{}` (line {}) is held",
                            g.name, g.line
                        ),
                    });
                }
            }
            for dropped in explicit_drops(s) {
                guards.retain(|g| g.name != dropped);
            }
        }

        for c in s.chars() {
            match c {
                '{' => {
                    if cfg_test_pending && test_depth.is_none() {
                        test_depth = Some(depth);
                        cfg_test_pending = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if test_depth == Some(depth) {
                        test_depth = None;
                    }
                    guards.retain(|g| g.depth < depth);
                }
                _ => {}
            }
        }
    }
}

/// Strips `//` comments, `/* */` comments and string-literal contents from
/// one line; returns the stripped line and whether a block comment continues.
fn strip_line(line: &str, mut in_block: bool) -> (String, bool) {
    let mut out = String::with_capacity(line.len());
    let chars: Vec<char> = line.chars().collect();
    let mut i = 0;
    let mut in_str = false;
    while i < chars.len() {
        let c = chars[i];
        let next = chars.get(i + 1).copied();
        if in_block {
            if c == '*' && next == Some('/') {
                in_block = false;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if in_str {
            if c == '\\' {
                i += 2;
            } else {
                if c == '"' {
                    in_str = false;
                    out.push('"');
                }
                i += 1;
            }
            continue;
        }
        match c {
            '/' if next == Some('/') => break,
            '/' if next == Some('*') => {
                in_block = true;
                i += 2;
            }
            '"' => {
                in_str = true;
                out.push('"');
                i += 1;
            }
            // Char literals like '"' or '{' would confuse the scanner.
            '\'' if next == Some('\\') && chars.get(i + 3) == Some(&'\'') => i += 4,
            '\'' if chars.get(i + 2) == Some(&'\'') => i += 3,
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    (out, in_block)
}

/// The item keyword when a stripped, trimmed line declares a `pub` item that
/// the documentation policy covers.
fn pub_item(trimmed: &str) -> Option<&'static str> {
    let rest = trimmed.strip_prefix("pub ")?;
    for kw in ["fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union"] {
        if rest.strip_prefix(kw).is_some_and(|r| r.starts_with([' ', '<', '('])) {
            return Some(kw);
        }
    }
    // `unsafe_code` is denied workspace-wide, but `pub async fn` could occur.
    if rest.strip_prefix("async fn ").is_some() {
        return Some("fn");
    }
    None
}

/// Whether the item starting at stripped line `i` has an attached doc
/// comment (`///` or `#[doc`), looking back over attributes.
fn has_doc(stripped: &[String], raw: &[&str], i: usize) -> bool {
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = raw[j].trim();
        if t.starts_with("///") || t.starts_with("#[doc") {
            return true;
        }
        // Attribute lines (possibly the tail of a wrapped #[derive(...)])
        // sit between docs and the item; skip them.
        let st = stripped[j].trim();
        if st.starts_with("#[") || st.ends_with(")]") {
            continue;
        }
        return false;
    }
    false
}

/// The bound name when a stripped, trimmed line is a `let` statement.
fn let_binding(trimmed: &str) -> Option<String> {
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
    (!name.is_empty() && !name.starts_with('_')).then_some(name)
}

/// Names explicitly dropped on this line via `drop(name)`.
fn explicit_drops(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = s;
    while let Some(pos) = rest.find("drop(") {
        let tail = &rest[pos + 5..];
        let name: String = tail.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        if !name.is_empty() {
            out.push(name);
        }
        rest = tail;
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used)]

    use super::*;

    #[test]
    fn strip_removes_comments_and_strings() {
        let (s, cont) = strip_line(r#"let x = "a.unwrap()"; // .expect(boom)"#, false);
        assert!(!s.contains("unwrap"));
        assert!(!s.contains("expect"));
        assert!(!cont);
        let (_, cont) = strip_line("foo /* start", false);
        assert!(cont);
        let (s, cont) = strip_line("end */ bar", true);
        assert_eq!(s.trim(), "bar");
        assert!(!cont);
    }

    #[test]
    fn char_literals_do_not_open_strings() {
        let (s, _) = strip_line(r#"if c == '"' { x.unwrap() }"#, false);
        assert!(s.contains("unwrap"));
    }

    #[test]
    fn pub_item_detection() {
        assert_eq!(pub_item("pub fn foo() {"), Some("fn"));
        assert_eq!(pub_item("pub struct Bar {"), Some("struct"));
        assert_eq!(pub_item("pub async fn baz() {"), Some("fn"));
        assert_eq!(pub_item("pub use foo::bar;"), None);
        assert_eq!(pub_item("pub(crate) fn hidden() {"), None);
        assert_eq!(pub_item("publish()"), None);
    }

    #[test]
    fn let_binding_extraction() {
        assert_eq!(let_binding("let mut inner = self.inner.lock();"), Some("inner".to_owned()));
        assert_eq!(let_binding("let g = m.lock();"), Some("g".to_owned()));
        assert_eq!(let_binding("self.inner.lock().contributions"), None);
        assert_eq!(let_binding("let _ = m.lock();"), None);
    }

    #[test]
    fn lock_across_send_fires_and_clears() {
        let dir = std::env::temp_dir().join("xtask-lint-test");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("case.rs");
        fs::write(
            &file,
            "fn bad(m: &Mutex<u32>, tx: &Sender<u32>) {\n\
             \x20   let g = m.lock();\n\
             \x20   tx.send(*g);\n\
             }\n\
             fn good(m: &Mutex<u32>, tx: &Sender<u32>) {\n\
             \x20   let g = m.lock();\n\
             \x20   let v = *g;\n\
             \x20   drop(g);\n\
             \x20   tx.send(v);\n\
             }\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        lint_file(&file, &dir, &mut findings, Checks::default());
        let locks: Vec<_> = findings.iter().filter(|f| f.lint == "lock-across-send").collect();
        assert_eq!(locks.len(), 1, "exactly the bad fn must fire");
        assert_eq!(locks[0].line, 3);
    }

    #[test]
    fn unwrap_lint_skips_test_modules() {
        let dir = std::env::temp_dir().join("xtask-lint-test2");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("case.rs");
        fs::write(
            &file,
            "fn prod() { x.unwrap(); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t() { y.unwrap(); }\n\
             }\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        lint_file(&file, &dir, &mut findings, Checks { unwrap: true, ..Checks::default() });
        let unwraps: Vec<_> = findings.iter().filter(|f| f.lint == "no-unwrap").collect();
        assert_eq!(unwraps.len(), 1);
        assert_eq!(unwraps[0].line, 1);
    }

    #[test]
    fn process_exit_lint_fires_outside_bin_only() {
        let dir = std::env::temp_dir().join("xtask-lint-test3");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("case.rs");
        fs::write(
            &file,
            "fn lib_code() { std::process::exit(2); }\n\
             fn noted() { let s = \"process::exit\"; } // string: no finding\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        lint_file(&file, &dir, &mut findings, Checks { exit: true, ..Checks::default() });
        let exits: Vec<_> = findings.iter().filter(|f| f.lint == "no-process-exit").collect();
        assert_eq!(exits.len(), 1, "only the real call fires, not strings/comments");
        assert_eq!(exits[0].line, 1);

        // The same file scanned as a binary source is exempt.
        let mut bin_findings = Vec::new();
        lint_file(&file, &dir, &mut bin_findings, Checks::default());
        assert!(bin_findings.iter().all(|f| f.lint != "no-process-exit"));
    }

    #[test]
    fn raw_thread_lint_fires_only_when_enabled() {
        let dir = std::env::temp_dir().join("xtask-lint-test4");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("case.rs");
        fs::write(
            &file,
            "fn bad() { std::thread::spawn(|| {}); }\n\
             fn also_bad() { std::thread::scope(|s| {}); }\n\
             fn fine() { std::thread::Builder::new().spawn(|| {}); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t() { std::thread::spawn(|| {}); }\n\
             }\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        lint_file(&file, &dir, &mut findings, Checks { threads: true, ..Checks::default() });
        let threads: Vec<_> = findings.iter().filter(|f| f.lint == "no-raw-thread").collect();
        assert_eq!(threads.len(), 2, "spawn + scope fire; Builder and tests do not");
        assert_eq!(threads[0].line, 1);
        assert_eq!(threads[1].line, 2);

        // The pool module is scanned with the lint disabled.
        let mut pool_findings = Vec::new();
        lint_file(&file, &dir, &mut pool_findings, Checks::default());
        assert!(pool_findings.iter().all(|f| f.lint != "no-raw-thread"));
    }

    /// One bench result record as JSON, for gate tests.
    fn bench_rec(op: &str, ns_per_iter: f64, gflops: f64) -> String {
        format!(
            "{{\"op\":\"{op}\",\"shape\":\"256x256x256\",\"threads\":2,\
             \"iters\":20,\"ns_per_iter\":{ns_per_iter},\"gflops\":{gflops}}}"
        )
    }

    /// One run record (array of results) as JSON, for gate tests.
    fn bench_run(mode: &str, results: &[String]) -> String {
        format!(
            "{{\"schema_version\":1,\"mode\":\"{mode}\",\"unix_time_s\":1,\
             \"results\":[{}]}}",
            results.join(",")
        )
    }

    #[test]
    fn bench_regression_gate_compares_last_full_run() {
        let dir = std::env::temp_dir().join("xtask-bench-gate-test");
        fs::create_dir_all(&dir).unwrap();
        let committed = dir.join("BENCH_kernels.json");
        fs::write(
            &committed,
            format!(
                "[{},{}]",
                bench_run("full", &[bench_rec("matmul_blocked", 1.0, 60.0)]),
                // Trailing smoke run must be ignored as a baseline.
                bench_run("smoke", &[bench_rec("matmul_blocked", 1.0, 1.0)]),
            ),
        )
        .unwrap();

        // Full-run baseline is found even with a smoke run appended after it.
        let full = last_run_results(&committed, Some("full")).unwrap();
        assert_eq!(full.len(), 1);
        assert!((full[0].1 - 60.0).abs() < 1e-9);
        assert!((full[0].2 - 1.0).abs() < 1e-9);

        // A healthy smoke run passes the gate…
        let smoke = dir.join("smoke.json");
        let write_smoke = |recs: &[String]| {
            fs::write(&smoke, format!("[{}]", bench_run("smoke", recs))).unwrap();
        };
        write_smoke(&[bench_rec("matmul_blocked", 1.0, 55.0)]);
        assert!(check_bench_regression(&dir, &smoke));

        // …a >25% drop fails it…
        write_smoke(&[bench_rec("matmul_blocked", 1.0, 30.0)]);
        assert!(!check_bench_regression(&dir, &smoke));

        // …and an unmatched record is skipped, not failed.
        write_smoke(&[bench_rec("matmul_new_op", 1.0, 0.1)]);
        assert!(check_bench_regression(&dir, &smoke));
    }

    #[test]
    fn bench_regression_gate_covers_conv_by_gflops() {
        let dir = std::env::temp_dir().join("xtask-bench-gate-conv-test");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("BENCH_kernels.json"),
            format!("[{}]", bench_run("full", &[bench_rec("conv2d_forward", 100.0, 8.0)])),
        )
        .unwrap();
        let smoke = dir.join("smoke.json");

        // Healthy conv throughput passes…
        fs::write(
            &smoke,
            format!("[{}]", bench_run("smoke", &[bench_rec("conv2d_forward", 110.0, 7.0)])),
        )
        .unwrap();
        assert!(check_bench_regression(&dir, &smoke));

        // …and a >25% GFLOP/s drop fails — conv records are no longer the
        // gate's blind spot.
        fs::write(
            &smoke,
            format!("[{}]", bench_run("smoke", &[bench_rec("conv2d_forward", 200.0, 4.0)])),
        )
        .unwrap();
        assert!(!check_bench_regression(&dir, &smoke));
    }

    #[test]
    fn bench_regression_gate_covers_zero_flop_records_by_time() {
        let dir = std::env::temp_dir().join("xtask-bench-gate-time-test");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join("BENCH_kernels.json"),
            format!(
                "[{}]",
                bench_run(
                    "full",
                    &[
                        bench_rec("ppo_update", 1000.0, 0.0),
                        bench_rec("rollout_step_batched", 500.0, 0.0),
                    ]
                )
            ),
        )
        .unwrap();
        let smoke = dir.join("smoke.json");

        // Under the 2× wall (even somewhat slower) passes…
        fs::write(
            &smoke,
            format!(
                "[{}]",
                bench_run(
                    "smoke",
                    &[
                        bench_rec("ppo_update", 1900.0, 0.0),
                        bench_rec("rollout_step_batched", 400.0, 0.0),
                    ]
                )
            ),
        )
        .unwrap();
        assert!(check_bench_regression(&dir, &smoke));

        // …past the wall fails: timed records can no longer regress
        // silently just because their gflops field is 0.
        fs::write(
            &smoke,
            format!("[{}]", bench_run("smoke", &[bench_rec("ppo_update", 2100.0, 0.0)])),
        )
        .unwrap();
        assert!(!check_bench_regression(&dir, &smoke));
    }

    #[test]
    fn atomic_ordering_lint_requires_justification() {
        let dir = std::env::temp_dir().join("xtask-lint-test5");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("case.rs");
        fs::write(
            &file,
            "fn same_line() { C.load(Ordering::Relaxed); } // ordering: telemetry\n\
             // ordering: monotonic counter, nothing published through it\n\
             fn line_above() { C.fetch_add(1, Ordering::Relaxed); }\n\
             fn bare() { C.store(0, Ordering::Relaxed); }\n\
             fn acquire_is_fine() { C.load(Ordering::Acquire); }\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   fn t() { C.load(Ordering::Relaxed); }\n\
             }\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        lint_file(&file, &dir, &mut findings, Checks { atomics: true, ..Checks::default() });
        let hits: Vec<_> = findings.iter().filter(|f| f.lint == "atomic-ordering").collect();
        assert_eq!(hits.len(), 1, "only the unjustified non-test Relaxed fires");
        assert_eq!(hits[0].line, 4);
    }

    #[test]
    fn condvar_predicate_lint_allows_wait_while() {
        let dir = std::env::temp_dir().join("xtask-lint-test6");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("case.rs");
        fs::write(
            &file,
            "fn bad(cv: &Condvar, g: Guard) { let _g = cv.wait(g); }\n\
             fn good(cv: &Condvar, g: Guard) { let _g = cv.wait_while(g, |q| q.is_empty()); }\n\
             fn timed(cv: &Condvar, g: Guard) { let _g = cv.wait_timeout(g, D); }\n\
             fn unrelated() { handle.join_wait(1); }\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        lint_file(&file, &dir, &mut findings, Checks { condvar: true, ..Checks::default() });
        let hits: Vec<_> = findings.iter().filter(|f| f.lint == "condvar-predicate").collect();
        assert_eq!(hits.len(), 1, "only the bare wait fires");
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn static_mut_lint_fires_even_in_tests() {
        let dir = std::env::temp_dir().join("xtask-lint-test7");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("case.rs");
        fs::write(
            &file,
            "static mut GLOBAL: u32 = 0;\n\
             \x20pub static mut ALSO: u32 = 0;\n\
             static FINE: AtomicU32 = AtomicU32::new(0);\n\
             // a static mut in a comment is fine\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   static mut IN_TEST: u32 = 0;\n\
             }\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        lint_file(&file, &dir, &mut findings, Checks { static_mut: true, ..Checks::default() });
        let hits: Vec<_> = findings.iter().filter(|f| f.lint == "no-static-mut").collect();
        assert_eq!(hits.len(), 3, "both declarations and the test one fire; comment does not");
        assert_eq!(hits[0].line, 1);
        assert_eq!(hits[1].line, 2);
        assert_eq!(hits[2].line, 7);
    }

    #[test]
    fn unsafe_allow_lint_flags_every_unsafe_code_allow() {
        let dir = std::env::temp_dir().join("xtask-lint-test8");
        fs::create_dir_all(&dir).unwrap();
        let file = dir.join("case.rs");
        fs::write(
            &file,
            "#![allow(unsafe_code)]\n\
             fn fine() {}\n\
             // allow(unsafe_code) in a comment is fine\n\
             #[cfg(test)]\n\
             mod tests {\n\
             \x20   #[allow(unsafe_code)]\n\
             \x20   fn t() {}\n\
             }\n",
        )
        .unwrap();
        let mut findings = Vec::new();
        lint_file(&file, &dir, &mut findings, Checks { unsafe_allow: true, ..Checks::default() });
        let hits: Vec<_> = findings.iter().filter(|f| f.lint == "unsafe-allow").collect();
        assert_eq!(hits.len(), 2, "file-level and test-module attributes fire; comment does not");
        assert_eq!(hits[0].line, 1);
        assert_eq!(hits[1].line, 6);
    }

    #[test]
    fn stale_allow_entries_are_detected() {
        // allow_match reports which entry matched; run_source_lints treats
        // unmatched entries as failures. Simulate the bookkeeping here.
        let allow = vec![
            ("no-unwrap".to_owned(), "crates/x/src/lib.rs".to_owned(), None),
            ("no-unwrap".to_owned(), "crates/gone/src/lib.rs".to_owned(), None),
        ];
        let finding = Finding {
            lint: "no-unwrap",
            path: PathBuf::from("crates/x/src/lib.rs"),
            line: 3,
            msg: String::new(),
        };
        let mut used = vec![false; allow.len()];
        if let Some(idx) = allow_match(&allow, &finding) {
            used[idx] = true;
        }
        assert_eq!(used, vec![true, false], "the entry for the vanished file must read stale");
    }

    #[test]
    fn allowlist_matching() {
        let allow = vec![
            ("no-unwrap".to_owned(), "crates/x/src/lib.rs".to_owned(), None),
            ("pub-docs".to_owned(), "crates/y/src/lib.rs".to_owned(), Some(7)),
        ];
        let f = |lint: &'static str, path: &str, line| Finding {
            lint,
            path: PathBuf::from(path),
            line,
            msg: String::new(),
        };
        assert!(allowed(&allow, &f("no-unwrap", "crates/x/src/lib.rs", 3)));
        assert!(allowed(&allow, &f("pub-docs", "crates/y/src/lib.rs", 7)));
        assert!(!allowed(&allow, &f("pub-docs", "crates/y/src/lib.rs", 8)));
        assert!(!allowed(&allow, &f("lock-across-send", "crates/x/src/lib.rs", 3)));
    }
}
