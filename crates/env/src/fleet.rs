//! Struct-of-arrays fleet state: the columnar stepping engine behind
//! [`crate::env::CrowdsensingEnv`].
//!
//! The AoS entity vectors ([`Worker`], [`Poi`], [`ChargingStation`]) remain
//! the *read* API, but stepping runs on [`FleetState`]'s parallel `Vec<f32>`
//! columns so a 1000-worker fleet advances with tight cache-friendly loops
//! and zero steady-state heap allocations (see `tests/fleet_alloc.rs`).
//!
//! One step is split into two phases that together reproduce the original
//! per-worker loop **bitwise** (proven by `tests/fleet_equivalence.rs` and
//! the unmodified golden-trace fixtures):
//!
//! * **Phase A** — per-worker physics with no cross-worker dependency:
//!   action decoding, exhaustion, route legality (boundary, obstacles,
//!   travel-energy budget) and the tentative end position. Each worker only
//!   reads its own columns plus static geometry, so the phase is pure per
//!   index and the kernel pool can split it across column chunks above
//!   [`FLEET_PAR_MIN_WORKERS`].
//! * **Phase B** — sequential resolution in worker-index order of the two
//!   competitive resources, exactly as the paper specifies: charging
//!   stations serve one worker per slot (earlier index wins) and PoIs are
//!   drained in index order (earlier workers collect first). Per-worker
//!   energy/pulse accounting rides along in the same order.
//!
//! The PoI in-range scan uses a uniform cell index ([`PoiGrid`]) so the
//! per-worker candidate set is O(local density) instead of O(P). Candidates
//! are sorted back into global PoI index order before draining, and the
//! exact distance predicate is re-applied per candidate, so both the drain
//! *set* and the floating-point accumulation *order* match the reference
//! loop bit for bit.

use crate::action::{Move, WorkerAction};
use crate::config::EnvConfig;
use crate::entities::{ChargingStation, Poi, Worker};
use crate::geometry::{Point, Rect};
use std::sync::{mpsc, Arc};
use vc_nn::arena;
use vc_nn::ops::gemm::kernel_threads;
use vc_nn::ops::pool;

/// Worker occupied the slot with a (possibly stalled) move.
const MODE_MOVE: u8 = 0;
/// Worker requested charging (legal even when exhausted).
const MODE_CHARGE: u8 = 1;
/// Worker is out of energy and stalls.
const MODE_EXHAUSTED: u8 = 2;
/// Phase-A packed flag bit: the move was illegal (collision).
const FLAG_COLLIDED: usize = 1 << 2;

/// Fleet size above which phase A is split across kernel-pool chunks.
///
/// Measured threshold: phase A costs tens of nanoseconds per worker while a
/// pooled dispatch (job boxing, input snapshot, result channel) costs tens
/// of microseconds, so fan-out only pays once a chunk carries roughly a
/// thousand workers. Below this the sequential columnar loop wins outright.
pub const FLEET_PAR_MIN_WORKERS: usize = 1024;

// ---- spatial index --------------------------------------------------------

/// Uniform-cell spatial index over PoI positions (CSR layout).
///
/// Cells at least as wide as the largest query radius would be ideal, but
/// correctness never depends on the cell size: a query walks every cell
/// overlapping the `[x±g, y±g]` box, so the candidate set is always a
/// superset of the true in-range set and the exact predicate filters it.
#[derive(Clone, Debug, Default)]
struct PoiGrid {
    nx: usize,
    ny: usize,
    cell: f32,
    /// CSR row starts, `nx*ny + 1` entries.
    start: Vec<usize>,
    /// PoI indices grouped by cell; within a cell they keep ascending order.
    ids: Vec<u32>,
}

impl PoiGrid {
    fn cell_index(&self, x: f32, y: f32) -> (usize, usize) {
        let cx = ((x / self.cell) as usize).min(self.nx - 1);
        let cy = ((y / self.cell) as usize).min(self.ny - 1);
        (cx, cy)
    }

    /// Rebuilds the index for the given PoI columns.
    fn build(&mut self, cfg: &EnvConfig, xs: &[f32], ys: &[f32]) {
        // Cell edge: the sensing range (so a query box spans ~3×3 cells),
        // floored so huge maps stay within a bounded cell count.
        self.cell = cfg.sensing_range.max(cfg.size_x.max(cfg.size_y) / 256.0).max(1e-6);
        self.nx = ((cfg.size_x / self.cell).ceil() as usize).max(1);
        self.ny = ((cfg.size_y / self.cell).ceil() as usize).max(1);
        let cells = self.nx * self.ny;
        self.start.clear();
        self.start.resize(cells + 1, 0);
        // Counting sort: pass 1 tallies, pass 2 scatters in ascending PoI
        // order so each cell's id run stays index-sorted.
        for i in 0..xs.len() {
            let (cx, cy) = self.cell_index(xs[i], ys[i]);
            self.start[cy * self.nx + cx + 1] += 1;
        }
        for c in 0..cells {
            self.start[c + 1] += self.start[c];
        }
        self.ids.clear();
        self.ids.resize(xs.len(), 0);
        let mut cursor = self.start.clone();
        for i in 0..xs.len() {
            let (cx, cy) = self.cell_index(xs[i], ys[i]);
            let slot = cursor[cy * self.nx + cx];
            self.ids[slot] = i as u32;
            cursor[cy * self.nx + cx] += 1;
        }
    }

    /// Pushes every PoI index whose cell overlaps the `[x±g, y±g]` box.
    /// The result is a superset of the in-range set, unsorted across cells.
    fn candidates_into(&self, x: f32, y: f32, g: f32, out: &mut Vec<usize>) {
        let (cx0, cy0) = self.cell_index((x - g).max(0.0), (y - g).max(0.0));
        let (cx1, cy1) = self.cell_index(x + g, y + g);
        for cy in cy0..=cy1 {
            for cx in cx0..=cx1 {
                let c = cy * self.nx + cx;
                for &id in &self.ids[self.start[c]..self.start[c + 1]] {
                    out.push(id as usize);
                }
            }
        }
    }
}

// ---- columnar state -------------------------------------------------------

/// Struct-of-arrays mirror of the fleet: one column per entity field.
///
/// This is the authoritative stepping representation; the environment keeps
/// its AoS `Vec<Worker>` / `Vec<Poi>` as an eagerly synchronized read view
/// (the "AoS view contract" of DESIGN.md §16).
#[derive(Clone, Debug, Default)]
pub struct FleetState {
    // Worker columns.
    pub(crate) x: Vec<f32>,
    pub(crate) y: Vec<f32>,
    pub(crate) energy: Vec<f32>,
    /// Per-worker battery capacity (the family-specific battery scale of
    /// heterogeneous fleets).
    pub(crate) capacity: Vec<f32>,
    pub(crate) total_collected: Vec<f32>,
    pub(crate) total_consumed: Vec<f32>,
    pub(crate) total_charged: Vec<f32>,
    pub(crate) collisions: Vec<u32>,
    // PoI columns.
    pub(crate) poi_x: Vec<f32>,
    pub(crate) poi_y: Vec<f32>,
    pub(crate) poi_initial: Vec<f32>,
    pub(crate) poi_data: Vec<f32>,
    pub(crate) poi_access: Vec<u32>,
    // Station columns.
    pub(crate) st_x: Vec<f32>,
    pub(crate) st_y: Vec<f32>,
    pub(crate) st_range: Vec<f32>,
    grid: PoiGrid,
    /// Obstacle set shared with pooled phase-A jobs without per-step copies.
    obstacles: Arc<Vec<Rect>>,
}

impl FleetState {
    /// Number of workers in the fleet.
    pub fn num_workers(&self) -> usize {
        self.x.len()
    }

    /// Worker x-coordinate column.
    pub fn worker_xs(&self) -> &[f32] {
        &self.x
    }

    /// Worker y-coordinate column.
    pub fn worker_ys(&self) -> &[f32] {
        &self.y
    }

    /// Worker energy column.
    pub fn energies(&self) -> &[f32] {
        &self.energy
    }

    /// Remaining PoI data column.
    pub fn poi_data(&self) -> &[f32] {
        &self.poi_data
    }

    /// Mirrors [`crate::env::CrowdsensingEnv::teleport_worker`] into the
    /// columns. PoI positions never move, so the grid stays valid.
    pub(crate) fn set_worker_pos(&mut self, wi: usize, pos: Point) {
        self.x[wi] = pos.x;
        self.y[wi] = pos.y;
    }

    /// Mirrors an energy overwrite into the columns.
    pub(crate) fn set_worker_energy(&mut self, wi: usize, energy: f32) {
        self.energy[wi] = energy;
    }

    /// Mirrors a PoI data overwrite into the columns.
    pub(crate) fn set_poi_data(&mut self, pi: usize, data: f32) {
        self.poi_data[pi] = data;
    }

    /// Rebuilds every column from AoS entities, reusing buffer capacity.
    pub(crate) fn load(
        &mut self,
        cfg: &EnvConfig,
        workers: &[Worker],
        pois: &[Poi],
        stations: &[ChargingStation],
    ) {
        fn fill<T: Copy>(col: &mut Vec<T>, it: impl Iterator<Item = T>) {
            col.clear();
            col.extend(it);
        }
        fill(&mut self.x, workers.iter().map(|w| w.pos.x));
        fill(&mut self.y, workers.iter().map(|w| w.pos.y));
        fill(&mut self.energy, workers.iter().map(|w| w.energy));
        fill(&mut self.capacity, workers.iter().map(|w| w.capacity));
        fill(&mut self.total_collected, workers.iter().map(|w| w.total_collected));
        fill(&mut self.total_consumed, workers.iter().map(|w| w.total_consumed));
        fill(&mut self.total_charged, workers.iter().map(|w| w.total_charged));
        fill(&mut self.collisions, workers.iter().map(|w| w.collisions));
        fill(&mut self.poi_x, pois.iter().map(|p| p.pos.x));
        fill(&mut self.poi_y, pois.iter().map(|p| p.pos.y));
        fill(&mut self.poi_initial, pois.iter().map(|p| p.initial_data));
        fill(&mut self.poi_data, pois.iter().map(|p| p.data));
        fill(&mut self.poi_access, pois.iter().map(|p| p.access_time));
        fill(&mut self.st_x, stations.iter().map(|s| s.pos.x));
        fill(&mut self.st_y, stations.iter().map(|s| s.pos.y));
        fill(&mut self.st_range, stations.iter().map(|s| s.range));
        self.grid.build(cfg, &self.poi_x, &self.poi_y);
        self.obstacles = Arc::new(cfg.obstacles.clone());
    }

    /// Refreshes the mutable fields of the AoS worker view from the columns
    /// (position, energy, lifetime totals, collisions). One branchless
    /// linear pass; capacity never changes mid-episode.
    pub(crate) fn sync_workers(&self, out: &mut [Worker]) {
        for (i, w) in out.iter_mut().enumerate() {
            w.pos.x = self.x[i];
            w.pos.y = self.y[i];
            w.energy = self.energy[i];
            w.total_collected = self.total_collected[i];
            w.total_consumed = self.total_consumed[i];
            w.total_charged = self.total_charged[i];
            w.collisions = self.collisions[i];
        }
    }

    /// Refreshes the mutable fields of the AoS PoI view (remaining data and
    /// access counters). Positions and initial data are static.
    pub(crate) fn sync_pois(&self, out: &mut [Poi]) {
        for (i, p) in out.iter_mut().enumerate() {
            p.data = self.poi_data[i];
            p.access_time = self.poi_access[i];
        }
    }
}

// ---- per-step scratch -----------------------------------------------------

/// Persistent per-step scratch: phase-A output columns, outcome columns and
/// the station/candidate buffers. All `f32`/`usize` buffers are leased from
/// the kernel arena once and reused, so a steady-state step allocates
/// nothing (pinned by `tests/fleet_alloc.rs`).
#[derive(Debug, Default)]
pub struct FleetScratch {
    end_x: Vec<f32>,
    end_y: Vec<f32>,
    traveled: Vec<f32>,
    mode: Vec<u8>,
    collided: Vec<u8>,
    station_busy: Vec<bool>,
    /// PoI candidate indices for the worker currently draining (sorted back
    /// into global index order before use).
    cand: Vec<usize>,
    // Outcome columns (the SoA form of `WorkerOutcome`).
    pub(crate) out_collected: Vec<f32>,
    pub(crate) out_consumed: Vec<f32>,
    pub(crate) out_charged: Vec<f32>,
    pub(crate) out_traveled: Vec<f32>,
    pub(crate) out_collided: Vec<u8>,
    pub(crate) out_charging: Vec<u8>,
    pub(crate) out_data_pulse: Vec<u8>,
    pub(crate) out_charge_pulse: Vec<u8>,
    /// Whether the arena-backed buffers have been leased yet.
    leased: bool,
}

impl Clone for FleetScratch {
    /// Scratch holds no state worth copying; a clone starts empty and
    /// re-leases its buffers on first use.
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl Drop for FleetScratch {
    fn drop(&mut self) {
        if !self.leased {
            return;
        }
        for buf in [
            std::mem::take(&mut self.end_x),
            std::mem::take(&mut self.end_y),
            std::mem::take(&mut self.traveled),
            std::mem::take(&mut self.out_collected),
            std::mem::take(&mut self.out_consumed),
            std::mem::take(&mut self.out_charged),
            std::mem::take(&mut self.out_traveled),
        ] {
            arena::put_f32(buf);
        }
        arena::put_usize(std::mem::take(&mut self.cand));
    }
}

impl FleetScratch {
    /// Sizes every buffer for `w` workers / `p` PoIs / `s` stations and
    /// resets the per-step columns. Allocation-free once capacities fit.
    fn prepare(&mut self, w: usize, p: usize, s: usize) {
        if !self.leased {
            self.end_x = arena::take_f32(w);
            self.end_y = arena::take_f32(w);
            self.traveled = arena::take_f32(w);
            self.out_collected = arena::take_f32(w);
            self.out_consumed = arena::take_f32(w);
            self.out_charged = arena::take_f32(w);
            self.out_traveled = arena::take_f32(w);
            self.cand = arena::take_usize(p.max(16));
            self.leased = true;
        }
        for col in [
            &mut self.end_x,
            &mut self.end_y,
            &mut self.traveled,
            &mut self.out_collected,
            &mut self.out_consumed,
            &mut self.out_charged,
            &mut self.out_traveled,
        ] {
            col.clear();
            col.resize(w, 0.0);
        }
        for col in [
            &mut self.mode,
            &mut self.collided,
            &mut self.out_collided,
            &mut self.out_charging,
            &mut self.out_data_pulse,
            &mut self.out_charge_pulse,
        ] {
            col.clear();
            col.resize(w, 0);
        }
        self.station_busy.clear();
        self.station_busy.resize(s, false);
    }
}

/// Borrowed view of one `step_fleet` outcome: per-worker outcome columns.
///
/// This is the allocation-free sibling of
/// [`crate::env::StepResult`] — the columns live in the environment's
/// persistent scratch and are overwritten by the next step.
#[derive(Debug)]
pub struct FleetStepView<'a> {
    /// Data collected this slot, per worker.
    pub collected: &'a [f32],
    /// Energy consumed this slot, per worker.
    pub consumed: &'a [f32],
    /// Energy charged this slot, per worker.
    pub charged: &'a [f32],
    /// Distance traveled this slot, per worker.
    pub traveled: &'a [f32],
    /// 1 where the worker collided.
    pub collided: &'a [u8],
    /// 1 where the worker spent the slot charging.
    pub charging: &'a [u8],
    /// 1 where the sparse data pulse Υ¹ fired.
    pub data_pulse: &'a [u8],
    /// 1 where the sparse charge pulse Υ² fired.
    pub charge_pulse: &'a [u8],
    /// Time slot index after the step (1-based).
    pub t: usize,
    /// True once the horizon is reached.
    pub done: bool,
}

impl FleetStepView<'_> {
    /// Materializes one worker's outcome struct from the columns.
    pub fn outcome(&self, wi: usize) -> crate::env::WorkerOutcome {
        crate::env::WorkerOutcome {
            collected: self.collected[wi],
            consumed: self.consumed[wi],
            charged: self.charged[wi],
            traveled: self.traveled[wi],
            collided: self.collided[wi] != 0,
            charging: self.charging[wi] != 0,
            data_pulse: self.data_pulse[wi] != 0,
            charge_pulse: self.charge_pulse[wi] != 0,
        }
    }
}

// ---- phase A: independent per-worker physics ------------------------------

/// `CrowdsensingEnv::path_clear` on raw geometry (no `self` borrow), shared
/// by the sequential and pooled phase-A paths.
#[inline]
fn path_clear_raw(size_x: f32, size_y: f32, obstacles: &[Rect], from: &Point, to: &Point) -> bool {
    if to.x < 0.0 || to.x > size_x || to.y < 0.0 || to.y > size_y {
        return false;
    }
    !obstacles.iter().any(|r| r.intersects_segment(from, to))
}

/// One worker's phase-A physics: mode classification, route legality and
/// the tentative end position. Pure in its inputs — this is what makes the
/// phase chunkable.
#[inline]
#[allow(clippy::too_many_arguments)]
fn phase_a_one(
    size_x: f32,
    size_y: f32,
    beta: f32,
    max_step: f32,
    obstacles: &[Rect],
    x: f32,
    y: f32,
    energy: f32,
    mv: Move,
    charge: bool,
) -> (u8, bool, f32, f32, f32) {
    if charge {
        return (MODE_CHARGE, false, x, y, 0.0);
    }
    if energy <= 0.0 {
        return (MODE_EXHAUSTED, false, x, y, 0.0);
    }
    let start = Point::new(x, y);
    let (dx, dy) = mv.displacement(max_step);
    let target = start.offset(dx, dy);
    let legal = mv == Move::Stay
        || (path_clear_raw(size_x, size_y, obstacles, &start, &target)
            && beta * start.dist(&target) <= energy);
    let (end, collided) = if legal { (target, false) } else { (start, true) };
    let traveled = start.dist(&end);
    (MODE_MOVE, collided, end.x, end.y, traveled)
}

/// Inputs snapshotted for pooled phase-A jobs (`'static`, shared read-only).
struct ParSnapshot {
    size_x: f32,
    size_y: f32,
    beta: f32,
    max_step: f32,
    obstacles: Arc<Vec<Rect>>,
    x: Vec<f32>,
    y: Vec<f32>,
    energy: Vec<f32>,
    /// Per-worker action code: `mv.index()` | `FLAG_CHARGE` bit.
    act: Vec<usize>,
}

/// Charge-request bit in the packed action code.
const ACT_CHARGE: usize = 1 << 8;

/// Phase A over a worker range, writing the scratch columns directly.
#[allow(clippy::too_many_arguments)]
fn phase_a_range(
    snap: &ParSnapshot,
    lo: usize,
    hi: usize,
    end_x: &mut [f32],
    end_y: &mut [f32],
    traveled: &mut [f32],
    flags: &mut [usize],
) {
    for i in lo..hi {
        let code = snap.act[i];
        let mv = Move::from_index(code & 0xff);
        let (mode, collided, ex, ey, tr) = phase_a_one(
            snap.size_x,
            snap.size_y,
            snap.beta,
            snap.max_step,
            &snap.obstacles,
            snap.x[i],
            snap.y[i],
            snap.energy[i],
            mv,
            code & ACT_CHARGE != 0,
        );
        end_x[i - lo] = ex;
        end_y[i - lo] = ey;
        traveled[i - lo] = tr;
        flags[i - lo] = mode as usize | if collided { FLAG_COLLIDED } else { 0 };
    }
}

/// Runs phase A, sequentially or pool-chunked above the fleet threshold.
fn phase_a(cfg: &EnvConfig, fleet: &FleetState, scr: &mut FleetScratch, actions: &[WorkerAction]) {
    let w = actions.len();
    let threads = kernel_threads().min(w / FLEET_PAR_MIN_WORKERS).max(1);
    if threads <= 1 {
        // Sequential columnar loop: same scalar kernel, no snapshot copies.
        for (i, a) in actions.iter().enumerate() {
            let (mode, collided, ex, ey, tr) = phase_a_one(
                cfg.size_x,
                cfg.size_y,
                cfg.beta,
                cfg.max_step,
                &fleet.obstacles,
                fleet.x[i],
                fleet.y[i],
                fleet.energy[i],
                a.movement,
                a.charge,
            );
            scr.end_x[i] = ex;
            scr.end_y[i] = ey;
            scr.traveled[i] = tr;
            scr.mode[i] = mode;
            scr.collided[i] = u8::from(collided);
        }
        return;
    }

    // Pooled dispatch (the GEMM idiom): snapshot the dynamic columns into an
    // `Arc`, fan chunk jobs out to the pool, keep chunk 0 for the caller,
    // and drain results over a per-call channel while helping the pool.
    // The per-worker kernel is pure, so chunk boundaries cannot change any
    // result bit — pooled and sequential phase A are identical.
    pool::ensure_workers(threads - 1);
    let mut act = arena::take_usize(w);
    act.extend(actions.iter().map(|a| a.movement.index() | if a.charge { ACT_CHARGE } else { 0 }));
    let mut x = arena::take_f32(w);
    x.extend_from_slice(&fleet.x);
    let mut y = arena::take_f32(w);
    y.extend_from_slice(&fleet.y);
    let mut energy = arena::take_f32(w);
    energy.extend_from_slice(&fleet.energy);
    let snap = Arc::new(ParSnapshot {
        size_x: cfg.size_x,
        size_y: cfg.size_y,
        beta: cfg.beta,
        max_step: cfg.max_step,
        obstacles: Arc::clone(&fleet.obstacles),
        x,
        y,
        energy,
        act,
    });

    let chunk = w.div_ceil(threads);
    type ChunkOut = (usize, usize, Vec<f32>, Vec<f32>, Vec<f32>, Vec<usize>);
    let (tx, rx) = mpsc::channel::<ChunkOut>();
    let mut jobs: Vec<pool::Job> = Vec::new();
    let mut lo = chunk; // chunk 0 stays with the caller
    while lo < w {
        let hi = (lo + chunk).min(w);
        let snap = Arc::clone(&snap);
        let tx = tx.clone();
        jobs.push(Box::new(move || {
            let n = hi - lo;
            let mut ex = arena::take_f32(n);
            ex.resize(n, 0.0);
            let mut ey = arena::take_f32(n);
            ey.resize(n, 0.0);
            let mut tr = arena::take_f32(n);
            tr.resize(n, 0.0);
            let mut fl = arena::take_usize(n);
            fl.resize(n, 0);
            phase_a_range(&snap, lo, hi, &mut ex, &mut ey, &mut tr, &mut fl);
            let _ = tx.send((lo, hi, ex, ey, tr, fl));
        }));
        lo = hi;
    }
    drop(tx);
    let mut pending = jobs.len();
    pool::submit(jobs);

    // The caller's chunk, computed in place.
    {
        let hi = chunk.min(w);
        let mut fl = arena::take_usize(hi);
        fl.resize(hi, 0);
        phase_a_range(
            &snap,
            0,
            hi,
            &mut scr.end_x[..hi],
            &mut scr.end_y[..hi],
            &mut scr.traveled[..hi],
            &mut fl,
        );
        for (i, &f) in fl.iter().enumerate() {
            scr.mode[i] = (f & 0x3) as u8;
            scr.collided[i] = u8::from(f & FLAG_COLLIDED != 0);
        }
        arena::put_usize(fl);
    }

    while pending > 0 {
        match rx.try_recv() {
            Ok((lo, hi, ex, ey, tr, fl)) => {
                scr.end_x[lo..hi].copy_from_slice(&ex);
                scr.end_y[lo..hi].copy_from_slice(&ey);
                scr.traveled[lo..hi].copy_from_slice(&tr);
                for (off, &f) in fl.iter().enumerate() {
                    scr.mode[lo + off] = (f & 0x3) as u8;
                    scr.collided[lo + off] = u8::from(f & FLAG_COLLIDED != 0);
                }
                arena::put_f32(ex);
                arena::put_f32(ey);
                arena::put_f32(tr);
                arena::put_usize(fl);
                pending -= 1;
            }
            Err(mpsc::TryRecvError::Empty) => {
                if !pool::try_run_one() {
                    std::thread::yield_now();
                }
            }
            Err(mpsc::TryRecvError::Disconnected) => {
                panic!("fleet phase-A pool job panicked ({pending} chunk(s) lost)");
            }
        }
    }
    if let Ok(snap) = Arc::try_unwrap(snap) {
        arena::put_f32(snap.x);
        arena::put_f32(snap.y);
        arena::put_f32(snap.energy);
        arena::put_usize(snap.act);
    }
}

// ---- the step kernel ------------------------------------------------------

/// Advances the fleet columns by one slot, filling the scratch outcome
/// columns. Bitwise-equivalent to the original AoS loop (kept as
/// `CrowdsensingEnv::step_reference`).
pub(crate) fn step_columns(
    cfg: &EnvConfig,
    fleet: &mut FleetState,
    scr: &mut FleetScratch,
    actions: &[WorkerAction],
    sparse_level: &mut [f32],
    initial_total_data: f32,
) {
    let w = actions.len();
    scr.prepare(w, fleet.poi_x.len(), fleet.st_x.len());

    phase_a(cfg, fleet, scr, actions);

    // Phase B: worker-index-order resolution of stations and PoIs — the
    // paper's competition semantics, identical to the reference loop.
    let g = cfg.sensing_range;
    let lambda = cfg.collect_rate;
    // Index-driven on purpose: the body reads and writes a dozen parallel
    // columns at `wi`; iterating any single one obscures that.
    #[allow(clippy::needless_range_loop)]
    for wi in 0..w {
        match scr.mode[wi] {
            MODE_CHARGE => {
                scr.out_charging[wi] = 1;
                let pos = Point::new(fleet.x[wi], fleet.y[wi]);
                let slot = (0..fleet.st_x.len()).find(|&si| {
                    !scr.station_busy[si]
                        && Point::new(fleet.st_x[si], fleet.st_y[si]).dist(&pos)
                            <= fleet.st_range[si]
                });
                if let Some(si) = slot {
                    scr.station_busy[si] = true;
                    let capacity = fleet.capacity[wi];
                    let sigma = cfg.charge_rate.min(capacity - fleet.energy[wi]).max(0.0);
                    fleet.energy[wi] += sigma;
                    fleet.total_charged[wi] += sigma;
                    scr.out_charged[wi] = sigma;
                    scr.out_charge_pulse[wi] = u8::from(sigma / capacity >= cfg.epsilon2);
                }
                // An out-of-range (or crowded-out) charge request wastes the
                // slot but costs nothing.
            }
            MODE_EXHAUSTED => {} // b_t = 0 ⇒ the worker stops movement.
            _ => {
                if scr.collided[wi] != 0 {
                    fleet.collisions[wi] += 1;
                    scr.out_collided[wi] = 1;
                }
                let traveled = scr.traveled[wi];
                scr.out_traveled[wi] = traveled;
                let end = Point::new(scr.end_x[wi], scr.end_y[wi]);

                // Drain in ascending PoI index order: the candidate list is
                // sorted so the floating-point sum order matches the
                // reference full scan (skipped PoIs contribute exactly 0.0,
                // which cannot change the accumulator's bits).
                let mut q = 0.0;
                scr.cand.clear();
                fleet.grid.candidates_into(end.x, end.y, g, &mut scr.cand);
                scr.cand.sort_unstable();
                for &pi in &scr.cand {
                    if Point::new(fleet.poi_x[pi], fleet.poi_y[pi]).dist(&end) <= g {
                        // `Poi::collect` on columns.
                        let amount = (lambda * fleet.poi_initial[pi]).min(fleet.poi_data[pi]);
                        if amount > 0.0 {
                            fleet.poi_data[pi] -= amount;
                            fleet.poi_access[pi] += 1;
                        }
                        q += amount;
                    }
                }

                // Energy accounting (Eqn 3), floored at an empty battery.
                let e = cfg.beta * traveled + cfg.alpha * q;
                let consumed = e.min(fleet.energy[wi]);
                fleet.x[wi] = end.x;
                fleet.y[wi] = end.y;
                fleet.energy[wi] -= consumed;
                fleet.total_collected[wi] += q;
                fleet.total_consumed[wi] += consumed;
                scr.out_collected[wi] = q;
                scr.out_consumed[wi] = consumed;

                if initial_total_data > 0.0 {
                    let ratio = fleet.total_collected[wi] / initial_total_data;
                    if ratio - sparse_level[wi] >= cfg.epsilon1 {
                        sparse_level[wi] = ratio;
                        scr.out_data_pulse[wi] = 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn poi_grid_candidates_cover_in_range_set() {
        let cfg = EnvConfig::paper_default();
        let xs: Vec<f32> = (0..200).map(|i| (i as f32 * 0.53) % cfg.size_x).collect();
        let ys: Vec<f32> = (0..200).map(|i| (i as f32 * 0.91) % cfg.size_y).collect();
        let mut grid = PoiGrid::default();
        grid.build(&cfg, &xs, &ys);
        let g = cfg.sensing_range;
        for (qx, qy) in [(0.0, 0.0), (8.0, 8.0), (15.9, 0.1), (3.3, 12.7)] {
            let mut cand = Vec::new();
            grid.candidates_into(qx, qy, g, &mut cand);
            let here = Point::new(qx, qy);
            for i in 0..xs.len() {
                if Point::new(xs[i], ys[i]).dist(&here) <= g {
                    assert!(cand.contains(&i), "in-range PoI {i} missing at ({qx},{qy})");
                }
            }
        }
    }

    #[test]
    fn poi_grid_cell_runs_are_index_sorted() {
        let cfg = EnvConfig::tiny();
        let xs = [1.0, 1.1, 7.0, 1.05, 0.9];
        let ys = [1.0, 1.1, 7.0, 1.05, 0.9];
        let mut grid = PoiGrid::default();
        grid.build(&cfg, &xs, &ys);
        for c in 0..grid.nx * grid.ny {
            let run = &grid.ids[grid.start[c]..grid.start[c + 1]];
            assert!(run.windows(2).all(|p| p[0] < p[1]), "cell {c} not sorted: {run:?}");
        }
    }
}
