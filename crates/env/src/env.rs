//! The discrete-time crowdsensing environment.
//!
//! Each call to [`CrowdsensingEnv::step`] advances one time slot: every
//! worker either charges (if validly requested), moves (if the path is
//! legal), or stalls, then collects data from PoIs within its sensing range
//! (Eqn 1) and pays the energy bill of Eqn (3). The environment reports a
//! per-worker [`WorkerOutcome`] from which both the paper's sparse reward
//! (Eqns 18–19) and the dense baseline reward (Eqn 20) are computed.

use crate::action::{Move, WorkerAction, NUM_MOVES};
use crate::config::EnvConfig;
use crate::entities::{ChargingStation, Poi, Worker};
use crate::fleet::{self, FleetScratch, FleetState, FleetStepView};
use crate::geometry::Point;
use crate::metrics::{self, Metrics};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::Arc;
use vc_telemetry::{Counter, Field, Gauge, Telemetry};

/// What happened to one worker during a slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerOutcome {
    /// Data collected this slot, `q_t^w`.
    pub collected: f32,
    /// Energy consumed this slot, `e_t^w`.
    pub consumed: f32,
    /// Energy charged this slot, `σ_t^w`.
    pub charged: f32,
    /// Distance actually traveled.
    pub traveled: f32,
    /// The worker hit an obstacle or the boundary.
    pub collided: bool,
    /// The worker spent the slot charging.
    pub charging: bool,
    /// Sparse-reward pulse `Υ¹` fired (collection ratio crossed another ε₁).
    pub data_pulse: bool,
    /// Sparse-reward pulse `Υ²` fired (charged ≥ ε₂·b₀ this slot).
    pub charge_pulse: bool,
}

/// Result of one environment step.
#[derive(Clone, Debug)]
pub struct StepResult {
    /// Per-worker outcomes, indexed like the action slice.
    pub outcomes: Vec<WorkerOutcome>,
    /// Time slot index after the step (1-based).
    pub t: usize,
    /// True once the horizon `T` is reached.
    pub done: bool,
}

thread_local! {
    /// Recycled `outcomes` buffers: [`StepResult`] returns its vector here
    /// on drop and [`CrowdsensingEnv::step`] leases it back, so steady-state
    /// stepping reuses the same allocation instead of churning the heap.
    static OUTCOME_SHELF: RefCell<Vec<Vec<WorkerOutcome>>> = const { RefCell::new(Vec::new()) };
}

/// Most `Vec<WorkerOutcome>` buffers kept on the recycle shelf.
const OUTCOME_SHELF_CAP: usize = 8;

impl Drop for StepResult {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.outcomes);
        if buf.capacity() == 0 {
            return;
        }
        // `try_with`: TLS may already be torn down during thread exit.
        let _ = OUTCOME_SHELF.try_with(|shelf| {
            let mut shelf = shelf.borrow_mut();
            if shelf.len() < OUTCOME_SHELF_CAP {
                shelf.push(buf);
            }
        });
    }
}

/// Leases a recycled outcome buffer (empty, capacity preserved).
fn take_outcome_buf() -> Vec<WorkerOutcome> {
    OUTCOME_SHELF
        .try_with(|shelf| shelf.borrow_mut().pop())
        .ok()
        .flatten()
        .map(|mut v| {
            v.clear();
            v
        })
        .unwrap_or_default()
}

/// The simulator.
#[derive(Clone, Debug)]
pub struct CrowdsensingEnv {
    cfg: EnvConfig,
    workers: Vec<Worker>,
    pois: Vec<Poi>,
    stations: Vec<ChargingStation>,
    /// Pristine copy of the scenario, restored by [`Self::reset`]. Hand-
    /// placed scenarios (see `builder`) live only here, not in the seed.
    template: (Vec<Worker>, Vec<Poi>, Vec<ChargingStation>),
    t: usize,
    initial_total_data: f32,
    /// Per-worker collection ratio at the last Υ¹ pulse.
    sparse_level: Vec<f32>,
    /// Authoritative struct-of-arrays stepping state; `workers` / `pois`
    /// above are an eagerly synchronized AoS read view over these columns
    /// (DESIGN.md §16).
    fleet: FleetState,
    /// Persistent arena-backed per-step scratch (zero steady-state allocs).
    scratch: FleetScratch,
    /// Cached telemetry handles; `None` until [`Self::set_telemetry`], so
    /// an uninstrumented env pays nothing per step.
    telemetry: Option<EnvTelemetry>,
}

/// Telemetry handles cached at attach time (see `vc_telemetry`'s overhead
/// policy): collision / charge / episode counters plus the per-episode
/// κ/ξ/ρ gauges updated when an episode completes.
#[derive(Clone, Debug)]
struct EnvTelemetry {
    handle: Telemetry,
    collisions: Arc<Counter>,
    charge_slots: Arc<Counter>,
    episodes: Arc<Counter>,
    kappa: Arc<Gauge>,
    xi: Arc<Gauge>,
    rho: Arc<Gauge>,
}

impl CrowdsensingEnv {
    /// Builds and resets an environment from a config (validated).
    ///
    /// # Panics
    ///
    /// On an invalid config; use [`Self::try_new`] to handle the error.
    pub fn new(cfg: EnvConfig) -> Self {
        Self::try_new(cfg).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Self::new`].
    ///
    /// # Errors
    ///
    /// [`crate::error::EnvError::InvalidConfig`] when the config fails
    /// [`EnvConfig::validate`].
    pub fn try_new(cfg: EnvConfig) -> Result<Self, crate::error::EnvError> {
        cfg.validate()?;
        let scenario = crate::scenario::build(&cfg);
        Self::try_from_parts(cfg, scenario.workers, scenario.pois, scenario.stations)
    }

    /// Builds an environment from explicit entities (the `builder` path).
    /// The entities become the reset template.
    ///
    /// # Panics
    ///
    /// On an invalid config; use [`Self::try_from_parts`] to handle the
    /// error.
    pub fn from_parts(
        cfg: EnvConfig,
        workers: Vec<Worker>,
        pois: Vec<Poi>,
        stations: Vec<ChargingStation>,
    ) -> Self {
        Self::try_from_parts(cfg, workers, pois, stations).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Self::from_parts`].
    ///
    /// # Errors
    ///
    /// [`crate::error::EnvError::InvalidConfig`] when the config fails
    /// [`EnvConfig::validate`].
    pub fn try_from_parts(
        cfg: EnvConfig,
        workers: Vec<Worker>,
        pois: Vec<Poi>,
        stations: Vec<ChargingStation>,
    ) -> Result<Self, crate::error::EnvError> {
        cfg.validate()?;
        let initial_total_data = pois.iter().map(|p| p.initial_data).sum();
        let w = workers.len();
        let mut fleet = FleetState::default();
        fleet.load(&cfg, &workers, &pois, &stations);
        Ok(Self {
            cfg,
            template: (workers.clone(), pois.clone(), stations.clone()),
            workers,
            pois,
            stations,
            t: 0,
            initial_total_data,
            sparse_level: vec![0.0; w],
            fleet,
            scratch: FleetScratch::default(),
            telemetry: None,
        })
    }

    /// Attaches a telemetry registry: per-step collision and charge-grant
    /// counters, and a per-episode κ/ξ/ρ event + gauges emitted when the
    /// horizon is reached. Cloned envs share the registry. With a disabled
    /// handle each step pays one relaxed atomic load.
    pub fn set_telemetry(&mut self, handle: Telemetry) {
        self.telemetry = Some(EnvTelemetry {
            collisions: handle.counter("env_collisions_total"),
            charge_slots: handle.counter("env_charge_slots_total"),
            episodes: handle.counter("env_episodes_total"),
            kappa: handle.gauge("env_kappa"),
            xi: handle.gauge("env_xi"),
            rho: handle.gauge("env_rho"),
            handle,
        });
    }

    /// The attached telemetry, only when it is currently enabled.
    fn tel(&self) -> Option<&EnvTelemetry> {
        self.telemetry.as_ref().filter(|t| t.handle.is_on())
    }

    /// Restores the pristine scenario (same map, full batteries, full data)
    /// and rewinds time.
    pub fn reset(&mut self) {
        let (workers, pois, stations) = self.template.clone();
        self.initial_total_data = pois.iter().map(|p| p.initial_data).sum();
        self.sparse_level = vec![0.0; workers.len()];
        self.workers = workers;
        self.pois = pois;
        self.stations = stations;
        self.fleet.load(&self.cfg, &self.workers, &self.pois, &self.stations);
        self.t = 0;
    }

    /// Re-generates a fresh random scenario from a new seed (fresh worker
    /// spawns / PoI draw while keeping all other parameters) and makes it
    /// the new reset template.
    pub fn reset_with_seed(&mut self, seed: u64) {
        self.cfg.seed = seed;
        let scenario = crate::scenario::build(&self.cfg);
        self.template = (scenario.workers, scenario.pois, scenario.stations);
        self.reset();
    }

    // ---- accessors ---------------------------------------------------------

    /// The static configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.cfg
    }

    /// Current worker states.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// Current PoI states.
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// Charging stations.
    pub fn stations(&self) -> &[ChargingStation] {
        &self.stations
    }

    /// The struct-of-arrays stepping state (columnar read view).
    pub fn fleet(&self) -> &FleetState {
        &self.fleet
    }

    /// Current time slot (0 before the first step).
    pub fn time(&self) -> usize {
        self.t
    }

    /// True once the horizon is reached.
    pub fn done(&self) -> bool {
        self.t >= self.cfg.horizon
    }

    /// Total initial data `Σ_p δ₀^p`.
    pub fn initial_total_data(&self) -> f32 {
        self.initial_total_data
    }

    /// Current paper metrics (κ, ξ, ρ).
    pub fn metrics(&self) -> Metrics {
        metrics::compute(&self.workers, &self.pois)
    }

    // ---- scenario surgery ----------------------------------------------------

    /// Moves a worker to an arbitrary position (test/ablation helper; does
    /// not validate obstacles or spend energy).
    pub fn teleport_worker(&mut self, worker: usize, pos: Point) {
        self.workers[worker].pos = pos;
        self.fleet.set_worker_pos(worker, pos);
    }

    /// Overwrites a worker's remaining energy (test/ablation helper).
    pub fn set_worker_energy(&mut self, worker: usize, energy: f32) {
        let w = &mut self.workers[worker];
        w.energy = energy.clamp(0.0, w.capacity);
        self.fleet.set_worker_energy(worker, w.energy);
    }

    /// Overwrites a PoI's remaining data, clamped to `[0, initial]` (the
    /// serving path uses this to project a reported fleet snapshot onto
    /// the policy's training scenario).
    pub fn set_poi_data(&mut self, poi: usize, data: f32) {
        let p = &mut self.pois[poi];
        p.data = data.clamp(0.0, p.initial_data);
        self.fleet.set_poi_data(poi, p.data);
    }

    // ---- queries for planners ----------------------------------------------

    /// Whether the segment `from -> to` is a legal move (inside the space and
    /// not through any obstacle).
    pub fn path_clear(&self, from: &Point, to: &Point) -> bool {
        if to.x < 0.0 || to.x > self.cfg.size_x || to.y < 0.0 || to.y > self.cfg.size_y {
            return false;
        }
        !self.cfg.obstacles.iter().any(|r| r.intersects_segment(from, to))
    }

    /// The position a worker would reach with `mv`, or `None` if the move is
    /// illegal (collision / boundary) or the worker cannot pay the travel
    /// energy.
    pub fn peek_move(&self, worker: usize, mv: Move) -> Option<Point> {
        let w = &self.workers[worker];
        if w.exhausted() {
            return if mv == Move::Stay { Some(w.pos) } else { None };
        }
        let (dx, dy) = mv.displacement(self.cfg.max_step);
        let target = w.pos.offset(dx, dy);
        if !self.path_clear(&w.pos, &target) {
            return None;
        }
        let travel_cost = self.cfg.beta * w.pos.dist(&target);
        if travel_cost > w.energy {
            return None;
        }
        Some(target)
    }

    /// Per-move legality mask for a worker (`Stay` is always legal).
    pub fn valid_moves(&self, worker: usize) -> [bool; NUM_MOVES] {
        let mut mask = [false; NUM_MOVES];
        for (i, m) in Move::ALL.iter().enumerate() {
            mask[i] = self.peek_move(worker, *m).is_some();
        }
        mask[Move::Stay.index()] = true;
        mask
    }

    /// Whether a worker is currently within range of any charging station.
    pub fn can_charge(&self, worker: usize) -> bool {
        let p = &self.workers[worker].pos;
        self.stations.iter().any(|s| s.in_range(p))
    }

    /// The data a worker standing at `pos` would collect this slot
    /// (Σ min(λδ₀, δ_t) over in-range PoIs) — the lookahead quantity used by
    /// the Greedy and D&C planners.
    pub fn potential_collection(&self, pos: &Point) -> f32 {
        let g = self.cfg.sensing_range;
        self.pois
            .iter()
            .filter(|p| p.pos.dist(pos) <= g)
            .map(|p| (self.cfg.collect_rate * p.initial_data).min(p.data))
            .sum()
    }

    // ---- dynamics -----------------------------------------------------------

    /// Advances one time slot. `actions` must have one entry per worker.
    ///
    /// Thin wrapper over [`Self::step_fleet`] that materializes the
    /// columnar outcomes into a `Vec<WorkerOutcome>` (recycled across steps
    /// via the drop shelf, so steady-state stepping stays allocation-free).
    pub fn step(&mut self, actions: &[WorkerAction]) -> StepResult {
        let mut outcomes = take_outcome_buf();
        let view = self.step_fleet(actions);
        outcomes.extend((0..actions.len()).map(|wi| view.outcome(wi)));
        let (t, done) = (view.t, view.done);
        StepResult { outcomes, t, done }
    }

    /// Advances one time slot on the struct-of-arrays fast path, returning
    /// a borrowed columnar view of the per-worker outcomes.
    ///
    /// This is the allocation-free fleet-scale entry point: the physics runs
    /// over [`FleetState`] columns (pool-chunked above
    /// [`fleet::FLEET_PAR_MIN_WORKERS`]) and the AoS `workers()` / `pois()`
    /// views are refreshed in place before returning. Bitwise-identical to
    /// [`Self::step_reference`] (see `tests/fleet_equivalence.rs`).
    pub fn step_fleet(&mut self, actions: &[WorkerAction]) -> FleetStepView<'_> {
        assert_eq!(actions.len(), self.workers.len(), "one action per worker required");
        assert!(!self.done(), "episode already finished; call reset()");

        fleet::step_columns(
            &self.cfg,
            &mut self.fleet,
            &mut self.scratch,
            actions,
            &mut self.sparse_level,
            self.initial_total_data,
        );
        self.fleet.sync_workers(&mut self.workers);
        self.fleet.sync_pois(&mut self.pois);

        self.t += 1;
        let done = self.done();
        if let Some(tel) = self.tel() {
            let collided = self.scratch.out_collided.iter().filter(|&&c| c != 0).count() as u64;
            if collided > 0 {
                tel.collisions.add(collided);
            }
            let charged = self.scratch.out_charged.iter().filter(|&&c| c > 0.0).count() as u64;
            if charged > 0 {
                tel.charge_slots.add(charged);
            }
            if done {
                self.emit_episode_telemetry(tel);
            }
        }
        FleetStepView {
            collected: &self.scratch.out_collected,
            consumed: &self.scratch.out_consumed,
            charged: &self.scratch.out_charged,
            traveled: &self.scratch.out_traveled,
            collided: &self.scratch.out_collided,
            charging: &self.scratch.out_charging,
            data_pulse: &self.scratch.out_data_pulse,
            charge_pulse: &self.scratch.out_charge_pulse,
            t: self.t,
            done,
        }
    }

    /// Emits the end-of-episode telemetry event and gauges.
    fn emit_episode_telemetry(&self, tel: &EnvTelemetry) {
        let m = metrics::compute(&self.workers, &self.pois);
        tel.kappa.set(f64::from(m.data_collection_ratio));
        tel.xi.set(f64::from(m.remaining_data_ratio));
        tel.rho.set(f64::from(m.energy_efficiency));
        tel.episodes.inc();
        let collisions: u64 = self.workers.iter().map(|w| u64::from(w.collisions)).sum();
        let charged_total: f64 = self.workers.iter().map(|w| f64::from(w.total_charged)).sum();
        tel.handle.event(
            "episode",
            &[
                ("t", Field::U64(self.t as u64)),
                ("kappa", Field::F64(f64::from(m.data_collection_ratio))),
                ("xi", Field::F64(f64::from(m.remaining_data_ratio))),
                ("rho", Field::F64(f64::from(m.energy_efficiency))),
                ("fairness", Field::F64(f64::from(m.fairness_index))),
                ("collisions", Field::U64(collisions)),
                ("charged", Field::F64(charged_total)),
            ],
        );
    }

    /// The original AoS per-entity step loop, preserved verbatim as the
    /// differential-testing baseline for the columnar path (see
    /// `tests/fleet_equivalence.rs`). Resynchronizes the fleet columns from
    /// the AoS state before returning, so the two paths can be interleaved.
    pub fn step_reference(&mut self, actions: &[WorkerAction]) -> StepResult {
        assert_eq!(actions.len(), self.workers.len(), "one action per worker required");
        assert!(!self.done(), "episode already finished; call reset()");

        let mut outcomes = vec![WorkerOutcome::default(); self.workers.len()];
        // Stations serve one worker per slot (the paper's charging
        // competition); earlier-indexed workers win ties.
        let mut station_busy = vec![false; self.stations.len()];

        for (wi, action) in actions.iter().enumerate() {
            let out = &mut outcomes[wi];
            // Snapshot the worker so planning queries can borrow `self`.
            let (start, energy, capacity, exhausted) = {
                let w = &self.workers[wi];
                (w.pos, w.energy, w.capacity, w.exhausted())
            };

            if action.charge {
                out.charging = true;
                let slot = self
                    .stations
                    .iter()
                    .enumerate()
                    .find(|(si, s)| !station_busy[*si] && s.in_range(&start));
                if let Some((si, _)) = slot {
                    station_busy[si] = true;
                    let sigma = self.cfg.charge_rate.min(capacity - energy).max(0.0);
                    let worker = &mut self.workers[wi];
                    worker.energy += sigma;
                    worker.total_charged += sigma;
                    out.charged = sigma;
                    out.charge_pulse = sigma / capacity >= self.cfg.epsilon2;
                }
                // An out-of-range (or crowded-out) charge request wastes the
                // slot but costs nothing.
                continue;
            }

            if exhausted {
                continue; // b_t = 0 ⇒ the worker stops movement.
            }

            // Route planning.
            let (dx, dy) = action.movement.displacement(self.cfg.max_step);
            let target = start.offset(dx, dy);
            let legal = action.movement == Move::Stay
                || (self.path_clear(&start, &target)
                    && self.cfg.beta * start.dist(&target) <= energy);

            let end = if legal {
                target
            } else {
                self.workers[wi].collisions += 1;
                out.collided = true;
                start
            };
            let traveled = start.dist(&end);
            out.traveled = traveled;

            // Data collection from PoIs within the sensing range of the new
            // position (workers are processed in index order, so earlier
            // workers drain shared PoIs first — the paper's competition).
            let mut q = 0.0;
            let g = self.cfg.sensing_range;
            let lambda = self.cfg.collect_rate;
            for poi in &mut self.pois {
                if poi.pos.dist(&end) <= g {
                    q += poi.collect(lambda);
                }
            }

            // Energy accounting (Eqn 3), floored at an empty battery.
            let e = self.cfg.beta * traveled + self.cfg.alpha * q;
            let consumed = e.min(energy);
            let worker = &mut self.workers[wi];
            worker.pos = end;
            worker.energy -= consumed;
            worker.total_collected += q;
            worker.total_consumed += consumed;
            out.collected = q;
            out.consumed = consumed;

            // Sparse-reward Υ¹ bookkeeping: pulse each time the per-worker
            // collection ratio climbs another ε₁ above the last pulse level.
            if self.initial_total_data > 0.0 {
                let ratio = worker.total_collected / self.initial_total_data;
                if ratio - self.sparse_level[wi] >= self.cfg.epsilon1 {
                    self.sparse_level[wi] = ratio;
                    out.data_pulse = true;
                }
            }
        }

        self.t += 1;
        let done = self.done();
        if let Some(tel) = self.tel() {
            let collided = outcomes.iter().filter(|o| o.collided).count() as u64;
            if collided > 0 {
                tel.collisions.add(collided);
            }
            let charged = outcomes.iter().filter(|o| o.charged > 0.0).count() as u64;
            if charged > 0 {
                tel.charge_slots.add(charged);
            }
            if done {
                self.emit_episode_telemetry(tel);
            }
        }
        // The AoS vectors are authoritative in this path: rebuild the
        // columns so a following `step_fleet` sees the same state.
        self.fleet.load(&self.cfg, &self.workers, &self.pois, &self.stations);
        StepResult { outcomes, t: self.t, done }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::config::EnvConfig;
    use crate::geometry::Rect;

    fn env_with(cfg: EnvConfig) -> CrowdsensingEnv {
        CrowdsensingEnv::new(cfg)
    }

    fn stay_all(env: &CrowdsensingEnv) -> Vec<WorkerAction> {
        vec![WorkerAction::go(Move::Stay); env.workers().len()]
    }

    #[test]
    fn horizon_terminates_episode() {
        let mut env = env_with(EnvConfig::tiny());
        let mut steps = 0;
        while !env.done() {
            env.step(&stay_all(&env));
            steps += 1;
        }
        assert_eq!(steps, env.config().horizon);
    }

    #[test]
    fn telemetry_counts_collisions_and_emits_episode_metrics() {
        let t = Telemetry::new();
        let mut env = env_with(EnvConfig::tiny());
        env.set_telemetry(t.clone());
        // Walking east off the map edge is illegal every slot → collision.
        env.teleport_worker(0, Point::new(7.9, 4.0));
        while !env.done() {
            env.step(&[WorkerAction::go(Move::East)]);
        }
        let horizon = env.config().horizon as u64;
        assert_eq!(t.counter("env_collisions_total").get(), horizon);
        assert_eq!(t.counter("env_episodes_total").get(), 1);
        let m = env.metrics();
        assert_eq!(t.gauge("env_rho").get(), f64::from(m.energy_efficiency));
        // A disabled handle freezes the counters.
        t.set_on(false);
        env.reset();
        env.step(&[WorkerAction::go(Move::East)]);
        assert_eq!(t.counter("env_collisions_total").get(), horizon);
    }

    #[test]
    #[should_panic(expected = "already finished")]
    fn stepping_after_done_panics() {
        let mut env = env_with(EnvConfig::tiny());
        for _ in 0..env.config().horizon {
            env.step(&stay_all(&env));
        }
        env.step(&stay_all(&env));
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut env = env_with(EnvConfig::tiny());
        let initial_pois = env.pois().to_vec();
        for _ in 0..5 {
            env.step(&[WorkerAction::go(Move::East)]);
        }
        env.reset();
        assert_eq!(env.time(), 0);
        assert_eq!(env.pois(), &initial_pois[..]);
        assert_eq!(env.workers()[0].total_collected, 0.0);
    }

    #[test]
    fn movement_consumes_travel_energy() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 0;
        let mut env = env_with(cfg);
        let e0 = env.workers()[0].energy;
        let p0 = env.workers()[0].pos;
        let mv = Move::ALL
            .iter()
            .copied()
            .find(|&m| m != Move::Stay && env.peek_move(0, m).is_some())
            .expect("some move must be legal");
        let r = env.step(&[WorkerAction::go(mv)]);
        assert!((r.outcomes[0].traveled - env.config().max_step).abs() < 1e-5);
        let expected = env.config().beta * env.config().max_step;
        assert!((e0 - env.workers()[0].energy - expected).abs() < 1e-5);
        assert!(env.workers()[0].pos.dist(&p0) > 0.0);
    }

    #[test]
    fn boundary_collision_stalls_and_penalizes() {
        let mut env = env_with(EnvConfig::tiny());
        // March west until the wall rejects the move.
        let mut collided = false;
        for _ in 0..env.config().horizon {
            let r = env.step(&[WorkerAction::go(Move::West)]);
            if r.outcomes[0].collided {
                collided = true;
                assert_eq!(r.outcomes[0].traveled, 0.0);
                break;
            }
        }
        assert!(collided, "never reached the boundary");
        assert!(env.workers()[0].collisions >= 1);
        assert!(env.workers()[0].pos.x >= 0.0);
    }

    #[test]
    fn obstacle_blocks_movement() {
        let mut cfg = EnvConfig::tiny();
        // Wall directly covering most of the map's middle.
        cfg.obstacles = vec![Rect::new(3.9, 0.0, 4.1, 8.0)];
        cfg.num_pois = 0;
        cfg.seed = 7;
        let mut env = env_with(cfg);
        // Plant the worker just west of the wall.
        env.teleport_worker(0, Point::new(3.5, 4.0));
        let r = env.step(&[WorkerAction::go(Move::East)]);
        assert!(r.outcomes[0].collided);
        assert_eq!(env.workers()[0].pos, Point::new(3.5, 4.0));
    }

    #[test]
    fn collection_obeys_rate_cap() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 1;
        let mut env = env_with(cfg);
        // Teleport the worker onto the PoI and stay: collection is capped at
        // λ·δ₀ per slot.
        let poi_pos = env.pois()[0].pos;
        let delta0 = env.pois()[0].initial_data;
        env.teleport_worker(0, poi_pos);
        let r = env.step(&stay_all(&env));
        let expected = env.config().collect_rate * delta0;
        assert!((r.outcomes[0].collected - expected).abs() < 1e-6);
        // Five slots drain it completely (λ = 0.2).
        for _ in 0..5 {
            env.step(&stay_all(&env));
        }
        assert!(env.pois()[0].data < 1e-6);
        assert_eq!(env.metrics().data_collection_ratio, env.workers()[0].total_collected / delta0);
    }

    #[test]
    fn collection_costs_alpha_energy() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 1;
        let mut env = env_with(cfg);
        env.teleport_worker(0, env.pois()[0].pos);
        let e0 = env.workers()[0].energy;
        let r = env.step(&stay_all(&env));
        let expected = env.config().alpha * r.outcomes[0].collected; // no travel
        assert!((e0 - env.workers()[0].energy - expected).abs() < 1e-5);
    }

    #[test]
    fn charging_requires_station_range() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 0;
        let mut env = env_with(cfg.clone());
        let station = env.stations()[0].pos;
        // Out of range: no energy gained.
        env.teleport_worker(
            0,
            Point::new((station.x + 3.0).min(cfg.size_x), (station.y + 3.0).min(cfg.size_y)),
        );
        env.set_worker_energy(0, 10.0);
        let r = env.step(&[WorkerAction::charge()]);
        assert_eq!(r.outcomes[0].charged, 0.0);
        // In range: gains charge_rate (capped by capacity headroom).
        env.teleport_worker(0, station);
        let r = env.step(&[WorkerAction::charge()]);
        let expected = env.config().charge_rate.min(env.workers()[0].capacity - 10.0);
        assert!((r.outcomes[0].charged - expected).abs() < 1e-5);
        assert!(r.outcomes[0].charge_pulse); // 20/40 ≥ ε₂ = 0.4
    }

    #[test]
    fn charge_capped_at_capacity() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 0;
        let mut env = env_with(cfg);
        env.teleport_worker(0, env.stations()[0].pos);
        // Nearly full battery: tiny top-up, and no ε₂ pulse.
        env.set_worker_energy(0, env.workers()[0].capacity - 1.0);
        let r = env.step(&[WorkerAction::charge()]);
        assert!((r.outcomes[0].charged - 1.0).abs() < 1e-5);
        assert!(!r.outcomes[0].charge_pulse);
        assert_eq!(env.workers()[0].energy, env.workers()[0].capacity);
    }

    #[test]
    fn station_serves_one_worker_per_slot() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_workers = 2;
        cfg.num_pois = 0;
        let mut env = env_with(cfg);
        let station = env.stations()[0].pos;
        env.teleport_worker(0, station);
        env.teleport_worker(1, station);
        env.set_worker_energy(0, 5.0);
        env.set_worker_energy(1, 5.0);
        let r = env.step(&[WorkerAction::charge(), WorkerAction::charge()]);
        assert!(r.outcomes[0].charged > 0.0, "first worker wins the station");
        assert_eq!(r.outcomes[1].charged, 0.0, "second worker is crowded out");
    }

    #[test]
    fn exhausted_worker_cannot_move() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 0;
        let mut env = env_with(cfg);
        env.set_worker_energy(0, 0.0);
        let p0 = env.workers()[0].pos;
        let r = env.step(&[WorkerAction::go(Move::East)]);
        assert_eq!(env.workers()[0].pos, p0);
        assert_eq!(r.outcomes[0].traveled, 0.0);
        assert!(!r.outcomes[0].collided, "exhaustion is a stall, not a collision");
    }

    #[test]
    fn data_pulse_fires_on_epsilon1_crossings() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 1;
        cfg.epsilon1 = 0.05;
        let mut env = env_with(cfg);
        env.teleport_worker(0, env.pois()[0].pos);
        // Each slot collects λ = 20% of the single PoI's data, which is 20%
        // of total data: every collecting slot crosses ε₁ = 5%.
        let r = env.step(&stay_all(&env));
        assert!(r.outcomes[0].data_pulse);
    }

    #[test]
    fn valid_moves_mask_is_consistent_with_peek() {
        let env = env_with(EnvConfig::paper_default());
        for wi in 0..env.workers().len() {
            let mask = env.valid_moves(wi);
            for (i, m) in Move::ALL.iter().enumerate() {
                if *m == Move::Stay {
                    assert!(mask[i]);
                } else {
                    assert_eq!(mask[i], env.peek_move(wi, *m).is_some());
                }
            }
        }
    }

    #[test]
    fn potential_collection_matches_actual() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 10;
        let mut env = env_with(cfg);
        let pos = env.pois()[0].pos;
        env.teleport_worker(0, pos);
        let predicted = env.potential_collection(&pos);
        let r = env.step(&stay_all(&env));
        assert!((predicted - r.outcomes[0].collected).abs() < 1e-5);
    }

    #[test]
    fn energy_never_negative_data_never_grows() {
        let mut env = env_with(EnvConfig::paper_default());
        let moves = [Move::East, Move::North, Move::SouthWest, Move::Stay, Move::West];
        let mut prev_remaining: f32 = env.pois().iter().map(|p| p.data).sum();
        for k in 0..env.config().horizon {
            let acts: Vec<WorkerAction> = (0..env.workers().len())
                .map(|w| WorkerAction::go(moves[(k + w) % moves.len()]))
                .collect();
            env.step(&acts);
            for w in env.workers() {
                assert!(w.energy >= 0.0, "negative energy");
                assert!(w.energy <= w.capacity + 1e-4);
            }
            let remaining: f32 = env.pois().iter().map(|p| p.data).sum();
            assert!(remaining <= prev_remaining + 1e-4, "data regrew");
            prev_remaining = remaining;
        }
    }
}
