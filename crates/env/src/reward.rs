//! Extrinsic reward mechanisms.
//!
//! * [`sparse_reward`] — the paper's sparse mechanism (Eqns 18–19):
//!   `r^{w,ext} = Υ¹ + Υ² − τ`, averaged over workers. `Υ¹` fires when the
//!   worker's collection ratio climbs another `ε₁`; `Υ²` fires when the slot's
//!   charged energy reaches `ε₂·b₀`; `τ` is the collision penalty.
//! * [`dense_reward`] — the dense function (Eqn 20) used to train the DPPO
//!   and Edics baselines: `(1/W)·Σ (q/e + σ/b₀ − τ)`.

use crate::config::EnvConfig;
use crate::env::WorkerOutcome;

/// Guard below which `q/e` is treated as zero (idle slot).
const MIN_ENERGY: f32 = 1e-6;

/// Per-worker sparse extrinsic reward (Eqn 18).
pub fn sparse_reward_worker(cfg: &EnvConfig, out: &WorkerOutcome) -> f32 {
    let y1 = if out.data_pulse { 1.0 } else { 0.0 };
    let y2 = if out.charge_pulse { 1.0 } else { 0.0 };
    let tau = if out.collided { cfg.collision_penalty } else { 0.0 };
    y1 + y2 - tau
}

/// Team sparse extrinsic reward (Eqn 19): worker average.
pub fn sparse_reward(cfg: &EnvConfig, outcomes: &[WorkerOutcome]) -> f32 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().map(|o| sparse_reward_worker(cfg, o)).sum::<f32>() / outcomes.len() as f32
}

/// Per-worker dense reward term of Eqn (20).
pub fn dense_reward_worker(cfg: &EnvConfig, out: &WorkerOutcome) -> f32 {
    let collection = if out.consumed > MIN_ENERGY { out.collected / out.consumed } else { 0.0 };
    let charge = out.charged / cfg.initial_energy;
    let tau = if out.collided { cfg.collision_penalty } else { 0.0 };
    collection + charge - tau
}

/// Team dense reward (Eqn 20): worker average.
pub fn dense_reward(cfg: &EnvConfig, outcomes: &[WorkerOutcome]) -> f32 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().map(|o| dense_reward_worker(cfg, o)).sum::<f32>() / outcomes.len() as f32
}

/// Which extrinsic mechanism a trainer uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RewardMode {
    /// Paper Eqns (18–19) — DRL-CEWS.
    Sparse,
    /// Paper Eqn (20) — DPPO / Edics baselines.
    Dense,
}

/// Dispatches on [`RewardMode`].
pub fn extrinsic_reward(mode: RewardMode, cfg: &EnvConfig, outcomes: &[WorkerOutcome]) -> f32 {
    match mode {
        RewardMode::Sparse => sparse_reward(cfg, outcomes),
        RewardMode::Dense => dense_reward(cfg, outcomes),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::config::EnvConfig;

    fn cfg() -> EnvConfig {
        EnvConfig::paper_default()
    }

    fn outcome() -> WorkerOutcome {
        WorkerOutcome::default()
    }

    #[test]
    fn sparse_pulses_add_up() {
        let c = cfg();
        let mut o = outcome();
        assert_eq!(sparse_reward_worker(&c, &o), 0.0);
        o.data_pulse = true;
        assert_eq!(sparse_reward_worker(&c, &o), 1.0);
        o.charge_pulse = true;
        assert_eq!(sparse_reward_worker(&c, &o), 2.0);
        o.collided = true;
        assert_eq!(sparse_reward_worker(&c, &o), 2.0 - c.collision_penalty);
    }

    #[test]
    fn sparse_team_reward_is_mean() {
        let c = cfg();
        let mut a = outcome();
        a.data_pulse = true; // 1.0
        let b = outcome(); // 0.0
        assert_eq!(sparse_reward(&c, &[a, b]), 0.5);
        assert_eq!(sparse_reward(&c, &[]), 0.0);
    }

    #[test]
    fn dense_reward_components() {
        let c = cfg();
        let mut o = outcome();
        o.collected = 0.4;
        o.consumed = 0.5;
        o.charged = 8.0; // /40 = 0.2
        let r = dense_reward_worker(&c, &o);
        assert!((r - (0.8 + 0.2)).abs() < 1e-6);
        o.collided = true;
        assert!((dense_reward_worker(&c, &o) - (1.0 - c.collision_penalty)).abs() < 1e-6);
    }

    #[test]
    fn dense_reward_guards_zero_energy() {
        let c = cfg();
        let mut o = outcome();
        o.collected = 0.3;
        o.consumed = 0.0; // impossible combination, but must not produce inf
        let r = dense_reward_worker(&c, &o);
        assert!(r.is_finite());
        assert_eq!(r, 0.0);
    }

    #[test]
    fn mode_dispatch() {
        let c = cfg();
        let mut o = outcome();
        o.data_pulse = true;
        o.collected = 0.2;
        o.consumed = 0.4;
        let outs = [o];
        assert_eq!(extrinsic_reward(RewardMode::Sparse, &c, &outs), 1.0);
        assert!((extrinsic_reward(RewardMode::Dense, &c, &outs) - 0.5).abs() < 1e-6);
    }
}
