//! Planar geometry for the crowdsensing space: points, rectangles
//! (obstacles), and the segment tests that decide movement legality.

use serde::{Deserialize, Serialize};

/// A position in the continuous 2-D crowdsensing space.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f32,
    /// Vertical coordinate.
    pub y: f32,
}

impl Point {
    /// Constructs a point.
    pub fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point (the paper's `d(i, j)`).
    pub fn dist(&self, other: &Point) -> f32 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Vector addition.
    pub fn offset(&self, dx: f32, dy: f32) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }
}

/// An axis-aligned rectangular obstacle `[x0, x1] × [y0, y1]`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub x0: f32,
    /// Bottom edge.
    pub y0: f32,
    /// Right edge.
    pub x1: f32,
    /// Top edge.
    pub y1: f32,
}

impl Rect {
    /// Constructs a rectangle, normalizing corner order.
    pub fn new(x0: f32, y0: f32, x1: f32, y1: f32) -> Self {
        Self { x0: x0.min(x1), y0: y0.min(y1), x1: x0.max(x1), y1: y0.max(y1) }
    }

    /// True if `p` lies strictly inside the rectangle (boundary touching is
    /// allowed, so workers can skirt walls).
    pub fn contains(&self, p: &Point) -> bool {
        p.x > self.x0 && p.x < self.x1 && p.y > self.y0 && p.y < self.y1
    }

    /// Rectangle width.
    pub fn width(&self) -> f32 {
        self.x1 - self.x0
    }

    /// Rectangle height.
    pub fn height(&self) -> f32 {
        self.y1 - self.y0
    }

    /// True if this rectangle overlaps the axis-aligned box
    /// `[x0, x1] × [y0, y1]` with positive area.
    pub fn overlaps_box(&self, x0: f32, y0: f32, x1: f32, y1: f32) -> bool {
        self.x0 < x1 && self.x1 > x0 && self.y0 < y1 && self.y1 > y0
    }

    /// True if the open segment `a -> b` passes through the rectangle's
    /// interior. Uses the slab (Liang–Barsky) clipping test.
    pub fn intersects_segment(&self, a: &Point, b: &Point) -> bool {
        if self.contains(a) || self.contains(b) {
            return true;
        }
        let (dx, dy) = (b.x - a.x, b.y - a.y);
        let mut t0 = 0.0f32;
        let mut t1 = 1.0f32;
        // Clip against each slab; reject as soon as the interval empties.
        for (p, q) in
            [(-dx, a.x - self.x0), (dx, self.x1 - a.x), (-dy, a.y - self.y0), (dy, self.y1 - a.y)]
        {
            if p == 0.0 {
                if q < 0.0 {
                    return false; // parallel and outside
                }
            } else {
                let r = q / p;
                if p < 0.0 {
                    t0 = t0.max(r);
                } else {
                    t1 = t1.min(r);
                }
                if t0 > t1 {
                    return false;
                }
            }
        }
        // The clipped interval is non-empty; require actual interior overlap
        // (not a mere boundary graze) by checking the midpoint.
        let tm = 0.5 * (t0 + t1);
        let mid = Point::new(a.x + tm * dx, a.y + tm * dy);
        self.contains(&mid)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn dist_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(b.dist(&a), 5.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn rect_normalizes_corners() {
        let r = Rect::new(5.0, 6.0, 1.0, 2.0);
        assert_eq!(r.x0, 1.0);
        assert_eq!(r.y1, 6.0);
        assert_eq!(r.width(), 4.0);
        assert_eq!(r.height(), 4.0);
    }

    #[test]
    fn contains_is_strict_interior() {
        let r = Rect::new(0.0, 0.0, 2.0, 2.0);
        assert!(r.contains(&Point::new(1.0, 1.0)));
        assert!(!r.contains(&Point::new(0.0, 1.0))); // boundary
        assert!(!r.contains(&Point::new(3.0, 1.0)));
    }

    #[test]
    fn overlaps_box_positive_area_only() {
        let r = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert!(r.overlaps_box(1.5, 1.5, 3.0, 3.0));
        assert!(r.overlaps_box(0.0, 0.0, 1.1, 1.1));
        // Touching edges only: no positive-area overlap.
        assert!(!r.overlaps_box(2.0, 1.0, 3.0, 2.0));
        assert!(!r.overlaps_box(0.0, 0.0, 1.0, 1.0));
        // Thin wall half-covering a unit cell overlaps it.
        let wall = Rect::new(11.0, 0.0, 11.5, 5.0);
        assert!(wall.overlaps_box(11.0, 2.0, 12.0, 3.0));
    }

    #[test]
    fn segment_through_rect_intersects() {
        let r = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert!(r.intersects_segment(&Point::new(0.0, 1.5), &Point::new(3.0, 1.5)));
        assert!(r.intersects_segment(&Point::new(1.5, 0.0), &Point::new(1.5, 3.0)));
        // Diagonal crossing.
        assert!(r.intersects_segment(&Point::new(0.5, 0.5), &Point::new(2.5, 2.5)));
    }

    #[test]
    fn segment_missing_rect_does_not_intersect() {
        let r = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert!(!r.intersects_segment(&Point::new(0.0, 0.0), &Point::new(3.0, 0.5)));
        assert!(!r.intersects_segment(&Point::new(0.0, 2.5), &Point::new(3.0, 2.5)));
        assert!(!r.intersects_segment(&Point::new(0.5, 0.0), &Point::new(0.5, 3.0)));
    }

    #[test]
    fn segment_grazing_boundary_is_free() {
        // Sliding exactly along a wall is legal movement.
        let r = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert!(!r.intersects_segment(&Point::new(0.0, 1.0), &Point::new(3.0, 1.0)));
        assert!(!r.intersects_segment(&Point::new(2.0, 0.0), &Point::new(2.0, 3.0)));
    }

    #[test]
    fn endpoint_inside_intersects() {
        let r = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert!(r.intersects_segment(&Point::new(1.5, 1.5), &Point::new(5.0, 5.0)));
        assert!(r.intersects_segment(&Point::new(5.0, 5.0), &Point::new(1.5, 1.5)));
    }

    #[test]
    fn degenerate_segment_outside_is_free() {
        let r = Rect::new(1.0, 1.0, 2.0, 2.0);
        let p = Point::new(0.5, 0.5);
        assert!(!r.intersects_segment(&p, &p));
    }
}
