//! Episode-level accounting built from per-step outcomes.
//!
//! [`EpisodeSummary`] accumulates [`crate::env::StepResult`]s into the
//! per-worker and fleet-level statistics that experiment reports and
//! examples narrate: collection/energy totals, charging behavior,
//! collision counts, and utilization (fraction of slots spent productively).

use crate::env::StepResult;
use serde::{Deserialize, Serialize};

/// Per-worker accumulated activity.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct WorkerSummary {
    /// Total data collected.
    pub collected: f32,
    /// Total energy consumed.
    pub consumed: f32,
    /// Total energy charged.
    pub charged: f32,
    /// Total distance traveled.
    pub traveled: f32,
    /// Slots spent charging.
    pub charge_slots: u32,
    /// Slots in which data was collected.
    pub productive_slots: u32,
    /// Obstacle/boundary collisions.
    pub collisions: u32,
    /// Sparse Υ¹ pulses earned.
    pub data_pulses: u32,
    /// Sparse Υ² pulses earned.
    pub charge_pulses: u32,
}

impl WorkerSummary {
    /// Data collected per unit of energy consumed (0 when unused).
    pub fn efficiency(&self) -> f32 {
        if self.consumed > 0.0 {
            self.collected / self.consumed
        } else {
            0.0
        }
    }
}

/// Fleet-level episode summary.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EpisodeSummary {
    /// Per-worker breakdown.
    pub workers: Vec<WorkerSummary>,
    /// Number of recorded slots.
    pub slots: u32,
}

impl EpisodeSummary {
    /// An empty summary for `num_workers` workers.
    pub fn new(num_workers: usize) -> Self {
        Self { workers: vec![WorkerSummary::default(); num_workers], slots: 0 }
    }

    /// Accumulates one step result.
    pub fn record(&mut self, result: &StepResult) {
        assert_eq!(result.outcomes.len(), self.workers.len(), "worker count changed mid-episode");
        self.slots += 1;
        for (w, out) in self.workers.iter_mut().zip(&result.outcomes) {
            w.collected += out.collected;
            w.consumed += out.consumed;
            w.charged += out.charged;
            w.traveled += out.traveled;
            w.charge_slots += out.charging as u32;
            w.productive_slots += (out.collected > 0.0) as u32;
            w.collisions += out.collided as u32;
            w.data_pulses += out.data_pulse as u32;
            w.charge_pulses += out.charge_pulse as u32;
        }
    }

    /// Total data collected across the fleet.
    pub fn total_collected(&self) -> f32 {
        self.workers.iter().map(|w| w.collected).sum()
    }

    /// Total energy consumed across the fleet.
    pub fn total_consumed(&self) -> f32 {
        self.workers.iter().map(|w| w.consumed).sum()
    }

    /// Fraction of worker-slots that collected data, in `[0, 1]`.
    pub fn utilization(&self) -> f32 {
        let total_slots = self.slots as f32 * self.workers.len() as f32;
        if total_slots == 0.0 {
            0.0
        } else {
            self.workers.iter().map(|w| w.productive_slots as f32).sum::<f32>() / total_slots
        }
    }

    /// Fraction of worker-slots spent charging.
    pub fn charge_fraction(&self) -> f32 {
        let total_slots = self.slots as f32 * self.workers.len() as f32;
        if total_slots == 0.0 {
            0.0
        } else {
            self.workers.iter().map(|w| w.charge_slots as f32).sum::<f32>() / total_slots
        }
    }

    /// One-line human-readable digest.
    pub fn digest(&self) -> String {
        format!(
            "{} slots: collected {:.2}, consumed {:.2}, charged {:.2}, utilization {:.0}%, charging {:.0}%, collisions {}",
            self.slots,
            self.total_collected(),
            self.total_consumed(),
            self.workers.iter().map(|w| w.charged).sum::<f32>(),
            self.utilization() * 100.0,
            self.charge_fraction() * 100.0,
            self.workers.iter().map(|w| w.collisions).sum::<u32>(),
        )
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::action::{Move, WorkerAction};
    use crate::builder::MapBuilder;

    #[test]
    fn summary_matches_env_accounting() {
        let mut env = MapBuilder::new(8.0, 8.0, 8)
            .poi(4.0, 4.5, 1.0)
            .poi(4.5, 4.0, 0.8)
            .station(2.0, 2.0)
            .worker(4.0, 4.0)
            .horizon(12)
            .build();
        let mut summary = EpisodeSummary::new(1);
        while !env.done() {
            let r = env.step(&[WorkerAction::go(Move::Stay)]);
            summary.record(&r);
        }
        assert_eq!(summary.slots, 12);
        let w = &env.workers()[0];
        assert!((summary.total_collected() - w.total_collected).abs() < 1e-5);
        assert!((summary.total_consumed() - w.total_consumed).abs() < 1e-5);
        assert!(summary.utilization() > 0.0);
        assert_eq!(summary.charge_fraction(), 0.0);
    }

    #[test]
    fn charging_slots_are_counted() {
        let mut env = MapBuilder::new(8.0, 8.0, 8)
            .station(4.0, 4.0)
            .worker(4.0, 4.0)
            .horizon(4)
            .energy(40.0)
            .build();
        env.set_worker_energy(0, 10.0);
        let mut summary = EpisodeSummary::new(1);
        let r = env.step(&[WorkerAction::charge()]);
        summary.record(&r);
        assert_eq!(summary.workers[0].charge_slots, 1);
        assert!(summary.workers[0].charged > 0.0);
        assert!(summary.charge_fraction() > 0.0);
        assert_eq!(summary.workers[0].charge_pulses, 1);
    }

    #[test]
    fn efficiency_guards_division() {
        let w = WorkerSummary::default();
        assert_eq!(w.efficiency(), 0.0);
        let w = WorkerSummary { collected: 2.0, consumed: 4.0, ..Default::default() };
        assert_eq!(w.efficiency(), 0.5);
    }

    #[test]
    fn digest_mentions_key_fields() {
        let mut s = EpisodeSummary::new(2);
        s.slots = 5;
        let d = s.digest();
        assert!(d.contains("5 slots"));
        assert!(d.contains("utilization"));
    }

    #[test]
    #[should_panic(expected = "worker count")]
    fn mismatched_worker_count_panics() {
        let mut env = MapBuilder::new(8.0, 8.0, 8).worker(1.0, 1.0).worker(2.0, 2.0).build();
        let r = env.step(&[WorkerAction::go(Move::Stay); 2]);
        let mut s = EpisodeSummary::new(1);
        s.record(&r);
    }
}
