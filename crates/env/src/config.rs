//! Environment configuration.
//!
//! Defaults follow Section VII-A of the paper: initial energy budget
//! `b₀ = 40`, sensing range `g = 0.8`, collection rate `λ = 0.2`, energy
//! coefficients `α = 1.0` (per unit data) and `β = 0.1` (per unit distance),
//! charging range `0.8`, sparse-reward bounds `ε₁ = 5%` and `ε₂ = 40%`.

use crate::geometry::Rect;
use serde::{Deserialize, Serialize};

/// How PoI positions are scattered over the space.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum PoiDistribution {
    /// Mixture of Gaussian clusters plus a uniform background — the paper's
    /// "mixture of Gaussian distributions and a random distribution",
    /// including a cluster seeded inside the hard-exploration corner room.
    ClusteredUneven,
    /// Uniform over free space (ablation).
    Uniform,
}

/// Full static description of a crowdsensing scenario.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnvConfig {
    /// Space extent along x (`L_x`).
    pub size_x: f32,
    /// Space extent along y (`L_y`).
    pub size_y: f32,
    /// Grid resolution of the state tensor (cells per axis).
    pub grid: usize,
    /// Number of workers `W`.
    pub num_workers: usize,
    /// Number of PoIs `P`.
    pub num_pois: usize,
    /// Number of charging stations.
    pub num_stations: usize,
    /// Episode length `T` in time slots.
    pub horizon: usize,
    /// Initial per-worker energy budget `b₀`.
    pub initial_energy: f32,
    /// Worker sensing range `g`.
    pub sensing_range: f32,
    /// Data collection rate `λ` of Eqn (1).
    pub collect_rate: f32,
    /// Energy per unit of collected data `α` of Eqn (3).
    pub alpha: f32,
    /// Energy per unit of traveled distance `β` of Eqn (3).
    pub beta: f32,
    /// Maximum travel distance per slot (bounds `‖v‖₂`).
    pub max_step: f32,
    /// Charging-station effective range ("pump pipe length").
    pub charge_range: f32,
    /// Energy gained per slot spent charging (`σ`), capped at capacity.
    pub charge_rate: f32,
    /// Sparse-reward data bound `ε₁` (fraction of total data per worker).
    pub epsilon1: f32,
    /// Sparse-reward charge bound `ε₂` (fraction of `b₀`).
    pub epsilon2: f32,
    /// Obstacle-collision penalty `τ`.
    pub collision_penalty: f32,
    /// Obstacle set (axis-aligned rectangles).
    pub obstacles: Vec<Rect>,
    /// PoI scattering scheme.
    pub poi_distribution: PoiDistribution,
    /// Use the paper's literal worker channel (bare energy ratio at the
    /// worker cell, no identity mark). The factored per-worker action heads
    /// cannot tell the blobs apart under this encoding; kept as an ablation
    /// of the identity-mark deviation documented in DESIGN.md.
    pub paper_worker_channel: bool,
    /// RNG seed for scenario generation (PoIs, worker spawns, stations).
    pub seed: u64,
}

impl EnvConfig {
    /// The paper's default scenario: a 16×16 space with the obstacle layout
    /// of Fig. 2(b), including the semi-enclosed bottom-right corner subarea
    /// reachable only through a narrow passage, 4 charging stations, 2
    /// workers and 200 PoIs.
    pub fn paper_default() -> Self {
        Self {
            size_x: 16.0,
            size_y: 16.0,
            grid: 16,
            num_workers: 2,
            num_pois: 200,
            num_stations: 4,
            horizon: 100,
            initial_energy: 40.0,
            sensing_range: 0.8,
            collect_rate: 0.2,
            alpha: 1.0,
            beta: 0.1,
            max_step: 1.0,
            charge_range: 0.8,
            charge_rate: 20.0,
            epsilon1: 0.05,
            epsilon2: 0.4,
            collision_penalty: 0.5,
            obstacles: Self::paper_obstacles(),
            poi_distribution: PoiDistribution::ClusteredUneven,
            paper_worker_channel: false,
            seed: 2020,
        }
    }

    /// The Fig. 2(b)-style obstacle layout: scattered collapsed buildings
    /// plus the bottom-right corner room with a one-unit passage (the
    /// "hard exploration subarea" of Section VII-A).
    pub fn paper_obstacles() -> Vec<Rect> {
        vec![
            // Scattered collapsed buildings.
            Rect::new(2.0, 11.0, 4.5, 13.0),
            Rect::new(6.5, 6.5, 8.5, 9.0),
            Rect::new(11.0, 11.5, 13.0, 14.0),
            Rect::new(2.5, 3.0, 4.0, 5.0),
            // Corner room walls: a 5×5 enclosure at the bottom-right whose
            // only entrance is a 1-unit gap on its top wall.
            Rect::new(11.0, 0.0, 11.5, 5.0), // west wall
            Rect::new(11.5, 4.5, 14.0, 5.0), // north wall, gap at x∈[14,15]
            Rect::new(15.0, 4.5, 16.0, 5.0), // north wall after the gap
        ]
    }

    /// A small fast scenario for tests: 8×8 space, no obstacles, 1 worker.
    pub fn tiny() -> Self {
        Self {
            size_x: 8.0,
            size_y: 8.0,
            grid: 8,
            num_workers: 1,
            num_pois: 20,
            num_stations: 1,
            horizon: 30,
            obstacles: Vec::new(),
            ..Self::paper_default()
        }
    }

    /// Grid cell edge length along x.
    pub fn cell_x(&self) -> f32 {
        self.size_x / self.grid as f32
    }

    /// Grid cell edge length along y.
    pub fn cell_y(&self) -> f32 {
        self.size_y / self.grid as f32
    }

    /// Validates internal consistency, returning
    /// [`EnvError::InvalidConfig`](crate::error::EnvError::InvalidConfig)
    /// describing the first problem found.
    pub fn validate(&self) -> Result<(), crate::error::EnvError> {
        let invalid = |why: &str| Err(crate::error::EnvError::InvalidConfig(why.into()));
        if self.size_x <= 0.0 || self.size_y <= 0.0 {
            return invalid("space dimensions must be positive");
        }
        if self.grid == 0 {
            return invalid("grid resolution must be positive");
        }
        if self.num_workers == 0 {
            return invalid("need at least one worker");
        }
        if self.horizon == 0 {
            return invalid("horizon must be positive");
        }
        if self.initial_energy <= 0.0 {
            return invalid("initial energy must be positive");
        }
        if !(0.0..=1.0).contains(&self.collect_rate) || self.collect_rate == 0.0 {
            return invalid("collect rate must be in (0, 1]");
        }
        if self.max_step <= 0.0 {
            return invalid("max step must be positive");
        }
        for (i, r) in self.obstacles.iter().enumerate() {
            if r.x1 > self.size_x || r.y1 > self.size_y || r.x0 < 0.0 || r.y0 < 0.0 {
                return Err(crate::error::EnvError::InvalidConfig(format!(
                    "obstacle {i} extends outside the space"
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_vii() {
        let c = EnvConfig::paper_default();
        assert_eq!(c.initial_energy, 40.0);
        assert_eq!(c.sensing_range, 0.8);
        assert_eq!(c.collect_rate, 0.2);
        assert_eq!(c.alpha, 1.0);
        assert_eq!(c.beta, 0.1);
        assert_eq!(c.charge_range, 0.8);
        assert_eq!(c.epsilon1, 0.05);
        assert_eq!(c.epsilon2, 0.4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn tiny_is_valid() {
        assert!(EnvConfig::tiny().validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = EnvConfig::paper_default();
        c.num_workers = 0;
        assert!(c.validate().is_err());

        let mut c = EnvConfig::paper_default();
        c.collect_rate = 0.0;
        assert!(c.validate().is_err());

        let mut c = EnvConfig::paper_default();
        c.obstacles.push(Rect::new(10.0, 10.0, 20.0, 12.0));
        assert!(c.validate().is_err());
    }

    #[test]
    fn cell_sizes() {
        let c = EnvConfig::paper_default();
        assert_eq!(c.cell_x(), 1.0);
        assert_eq!(c.cell_y(), 1.0);
    }

    #[test]
    fn config_serde_roundtrip() {
        let c = EnvConfig::paper_default();
        let json = serde_json::to_string(&c).unwrap();
        let back: EnvConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }
}
