//! Runtime entities of the crowdsensing space: intelligent workers, PoIs and
//! charging stations (Definitions 2–3 of the paper).

use crate::geometry::Point;
use serde::{Deserialize, Serialize};

/// An intelligent worker (drone / driverless car).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Worker {
    /// Current position `(x_t^w, y_t^w)`.
    pub pos: Point,
    /// Current energy budget `b_t^w`.
    pub energy: f32,
    /// Battery capacity (equals the initial budget `b₀`).
    pub capacity: f32,
    /// Total data collected so far, `Q_t^w`.
    pub total_collected: f32,
    /// Total energy consumed so far, `E_t^w`.
    pub total_consumed: f32,
    /// Total energy charged so far, `Σ_k σ_k^w`.
    pub total_charged: f32,
    /// Collision count (obstacle hits / boundary violations).
    pub collisions: u32,
}

impl Worker {
    /// A fresh worker at `pos` with full battery `b0`.
    pub fn new(pos: Point, b0: f32) -> Self {
        Self {
            pos,
            energy: b0,
            capacity: b0,
            total_collected: 0.0,
            total_consumed: 0.0,
            total_charged: 0.0,
            collisions: 0,
        }
    }

    /// True if the battery is exhausted (the worker "stops movement").
    pub fn exhausted(&self) -> bool {
        self.energy <= 0.0
    }

    /// Energy as a fraction of capacity, in `[0, 1]`.
    pub fn energy_ratio(&self) -> f32 {
        (self.energy / self.capacity).clamp(0.0, 1.0)
    }
}

/// A point of interest holding collectible data (Definition 3).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Poi {
    /// Fixed location `(x^p, y^p)`.
    pub pos: Point,
    /// Initial data value `δ₀^p ∈ (0, 1)`.
    pub initial_data: f32,
    /// Remaining data value `δ_t^p`.
    pub data: f32,
    /// Access-time counter `h_t(p)`: number of slots in which this PoI was
    /// sensed (state channel 3).
    pub access_time: u32,
}

impl Poi {
    /// A fresh PoI with `δ_t = δ₀`.
    pub fn new(pos: Point, initial_data: f32) -> Self {
        Self { pos, initial_data, data: initial_data, access_time: 0 }
    }

    /// Fraction of the initial data already collected, in `[0, 1]`.
    pub fn collected_fraction(&self) -> f32 {
        if self.initial_data <= 0.0 {
            0.0
        } else {
            ((self.initial_data - self.data) / self.initial_data).clamp(0.0, 1.0)
        }
    }

    /// Fraction of the initial data still remaining, in `[0, 1]`.
    pub fn remaining_fraction(&self) -> f32 {
        1.0 - self.collected_fraction()
    }

    /// Removes up to `min(λ·δ₀, δ_t)` data (Eqn 1), returning the amount
    /// actually collected, and bumps the access time if anything was taken.
    pub fn collect(&mut self, lambda: f32) -> f32 {
        let amount = (lambda * self.initial_data).min(self.data);
        if amount > 0.0 {
            self.data -= amount;
            self.access_time += 1;
        }
        amount
    }
}

/// A charging station with a finite service range.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChargingStation {
    /// Fixed location.
    pub pos: Point,
    /// Effective charging range (pump pipe length).
    pub range: f32,
}

impl ChargingStation {
    /// A station at `pos` with the given range.
    pub fn new(pos: Point, range: f32) -> Self {
        Self { pos, range }
    }

    /// True if a worker at `p` can be served.
    pub fn in_range(&self, p: &Point) -> bool {
        self.pos.dist(p) <= self.range
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn worker_lifecycle() {
        let mut w = Worker::new(Point::new(1.0, 1.0), 40.0);
        assert!(!w.exhausted());
        assert_eq!(w.energy_ratio(), 1.0);
        w.energy = 0.0;
        assert!(w.exhausted());
        assert_eq!(w.energy_ratio(), 0.0);
    }

    #[test]
    fn poi_collect_caps_at_rate_then_remainder() {
        let mut p = Poi::new(Point::new(0.0, 0.0), 1.0);
        // λ = 0.4 → collects 0.4, 0.4, then the remaining 0.2.
        assert!((p.collect(0.4) - 0.4).abs() < 1e-6);
        assert!((p.collect(0.4) - 0.4).abs() < 1e-6);
        assert!((p.collect(0.4) - 0.2).abs() < 1e-6);
        assert_eq!(p.collect(0.4), 0.0);
        assert_eq!(p.data, 0.0);
        assert_eq!(p.access_time, 3); // the empty visit does not count
        assert_eq!(p.collected_fraction(), 1.0);
    }

    #[test]
    fn poi_fractions_complementary() {
        let mut p = Poi::new(Point::new(0.0, 0.0), 0.8);
        p.collect(0.25);
        let c = p.collected_fraction();
        let r = p.remaining_fraction();
        assert!((c + r - 1.0).abs() < 1e-6);
        assert!((c - 0.25).abs() < 1e-6);
    }

    #[test]
    fn station_range_check() {
        let s = ChargingStation::new(Point::new(5.0, 5.0), 0.8);
        assert!(s.in_range(&Point::new(5.5, 5.0)));
        assert!(s.in_range(&Point::new(5.0, 5.75)));
        assert!(!s.in_range(&Point::new(6.0, 6.0)));
    }
}
