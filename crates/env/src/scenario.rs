//! Scenario generation: scattering PoIs, charging stations and worker
//! spawns over the space, deterministically from the config seed.
//!
//! PoIs follow the paper's "mixture of Gaussian distributions and a random
//! distribution", with one cluster deliberately seeded inside the
//! hard-exploration corner room so that coverage fairness requires entering
//! it.

use crate::config::{EnvConfig, PoiDistribution};
use crate::entities::{ChargingStation, Poi, Worker};
use crate::geometry::Point;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A fully instantiated scenario ready to run.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Vehicular workers with initial positions and batteries.
    pub workers: Vec<Worker>,
    /// Points of interest carrying collectable data.
    pub pois: Vec<Poi>,
    /// Charging stations.
    pub stations: Vec<ChargingStation>,
}

/// Standard normal via Box–Muller.
fn randn(rng: &mut StdRng) -> f32 {
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

fn inside_obstacle(cfg: &EnvConfig, p: &Point) -> bool {
    cfg.obstacles.iter().any(|r| r.contains(p))
}

/// Rejection-samples a point in free space (uniform over the whole space).
fn sample_free(cfg: &EnvConfig, rng: &mut StdRng) -> Point {
    for _ in 0..10_000 {
        let p = Point::new(rng.gen::<f32>() * cfg.size_x, rng.gen::<f32>() * cfg.size_y);
        if !inside_obstacle(cfg, &p) {
            return p;
        }
    }
    panic!("free space appears empty — obstacles cover the whole map");
}

/// Clamps a point into the space and rejects obstacle interiors by retrying
/// around the cluster center.
fn sample_near(cfg: &EnvConfig, center: Point, std: f32, rng: &mut StdRng) -> Point {
    for _ in 0..1_000 {
        let p = Point::new(
            (center.x + randn(rng) * std).clamp(0.05, cfg.size_x - 0.05),
            (center.y + randn(rng) * std).clamp(0.05, cfg.size_y - 0.05),
        );
        if !inside_obstacle(cfg, &p) {
            return p;
        }
    }
    sample_free(cfg, rng)
}

/// Generates the PoI set per the configured distribution.
pub fn generate_pois(cfg: &EnvConfig, rng: &mut StdRng) -> Vec<Poi> {
    let mut pois = Vec::with_capacity(cfg.num_pois);
    match cfg.poi_distribution {
        PoiDistribution::Uniform => {
            for _ in 0..cfg.num_pois {
                let pos = sample_free(cfg, rng);
                pois.push(Poi::new(pos, 0.05 + 0.95 * rng.gen::<f32>()));
            }
        }
        PoiDistribution::ClusteredUneven => {
            // Cluster centers: a few random ones plus, when the corner room
            // exists (paper map), one inside it.
            let mut centers: Vec<(Point, f32, f32)> = Vec::new(); // (center, std, weight)
            let k = 4;
            for _ in 0..k {
                centers.push((sample_free(cfg, rng), 0.09 * cfg.size_x, 1.0));
            }
            if !cfg.obstacles.is_empty() {
                // Heuristic corner-room center matching `paper_obstacles`:
                // bottom-right region.
                let corner = Point::new(cfg.size_x * 0.85, cfg.size_y * 0.15);
                if !inside_obstacle(cfg, &corner) {
                    centers.push((corner, 0.06 * cfg.size_x, 0.8));
                }
            }
            let total_w: f32 = centers.iter().map(|c| c.2).sum();
            // 25% uniform background, 75% split over clusters by weight.
            let n_uniform = cfg.num_pois / 4;
            for _ in 0..n_uniform {
                let pos = sample_free(cfg, rng);
                pois.push(Poi::new(pos, 0.05 + 0.95 * rng.gen::<f32>()));
            }
            for i in 0..(cfg.num_pois - n_uniform) {
                // Deterministic proportional assignment to clusters.
                let mut pick = (i as f32 + 0.5) / (cfg.num_pois - n_uniform) as f32 * total_w;
                let mut chosen = centers.len() - 1;
                for (ci, c) in centers.iter().enumerate() {
                    if pick < c.2 {
                        chosen = ci;
                        break;
                    }
                    pick -= c.2;
                }
                let (center, std, _) = centers[chosen];
                let pos = sample_near(cfg, center, std, rng);
                pois.push(Poi::new(pos, 0.05 + 0.95 * rng.gen::<f32>()));
            }
        }
    }
    pois
}

/// Places charging stations spread over free space: a deterministic grid of
/// candidate anchors, each nudged to the nearest free point.
pub fn generate_stations(cfg: &EnvConfig, rng: &mut StdRng) -> Vec<ChargingStation> {
    let mut stations = Vec::with_capacity(cfg.num_stations);
    // Anchor layout: positions on a coarse lattice chosen to spread coverage.
    let anchors = [
        (0.25, 0.25),
        (0.75, 0.75),
        (0.25, 0.75),
        (0.75, 0.25),
        (0.5, 0.5),
        (0.5, 0.1),
        (0.1, 0.5),
        (0.9, 0.5),
        (0.5, 0.9),
        (0.1, 0.1),
    ];
    for i in 0..cfg.num_stations {
        let pos = if i < anchors.len() {
            let (ax, ay) = anchors[i];
            let cand = Point::new(ax * cfg.size_x, ay * cfg.size_y);
            if inside_obstacle(cfg, &cand) {
                sample_free(cfg, rng)
            } else {
                cand
            }
        } else {
            sample_free(cfg, rng)
        };
        stations.push(ChargingStation::new(pos, cfg.charge_range));
    }
    stations
}

/// Spawns workers at random free positions.
pub fn generate_workers(cfg: &EnvConfig, rng: &mut StdRng) -> Vec<Worker> {
    (0..cfg.num_workers).map(|_| Worker::new(sample_free(cfg, rng), cfg.initial_energy)).collect()
}

/// Builds the full scenario from the config seed.
pub fn build(cfg: &EnvConfig) -> Scenario {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let pois = generate_pois(cfg, &mut rng);
    let stations = generate_stations(cfg, &mut rng);
    let workers = generate_workers(cfg, &mut rng);
    Scenario { workers, pois, stations }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::config::EnvConfig;

    #[test]
    fn build_is_deterministic() {
        let cfg = EnvConfig::paper_default();
        let a = build(&cfg);
        let b = build(&cfg);
        assert_eq!(a.pois, b.pois);
        assert_eq!(a.workers, b.workers);
        assert_eq!(a.stations, b.stations);
    }

    #[test]
    fn different_seed_different_scenario() {
        let cfg = EnvConfig::paper_default();
        let mut cfg2 = cfg.clone();
        cfg2.seed = 999;
        assert_ne!(build(&cfg).pois, build(&cfg2).pois);
    }

    #[test]
    fn counts_match_config() {
        let cfg = EnvConfig::paper_default();
        let s = build(&cfg);
        assert_eq!(s.pois.len(), cfg.num_pois);
        assert_eq!(s.workers.len(), cfg.num_workers);
        assert_eq!(s.stations.len(), cfg.num_stations);
    }

    #[test]
    fn nothing_spawns_inside_obstacles() {
        let cfg = EnvConfig::paper_default();
        let s = build(&cfg);
        for p in &s.pois {
            assert!(!cfg.obstacles.iter().any(|r| r.contains(&p.pos)), "PoI inside obstacle");
        }
        for w in &s.workers {
            assert!(!cfg.obstacles.iter().any(|r| r.contains(&w.pos)), "worker inside obstacle");
        }
        for st in &s.stations {
            assert!(!cfg.obstacles.iter().any(|r| r.contains(&st.pos)), "station inside obstacle");
        }
    }

    #[test]
    fn everything_inside_space() {
        let cfg = EnvConfig::paper_default();
        let s = build(&cfg);
        for p in &s.pois {
            assert!(p.pos.x >= 0.0 && p.pos.x <= cfg.size_x);
            assert!(p.pos.y >= 0.0 && p.pos.y <= cfg.size_y);
        }
    }

    #[test]
    fn clustered_distribution_is_uneven() {
        // Compare occupancy variance across a coarse grid: clustered must be
        // substantially more concentrated than uniform.
        let occupancy_var = |dist: PoiDistribution| {
            let mut cfg = EnvConfig::paper_default();
            cfg.poi_distribution = dist;
            cfg.num_pois = 400;
            let s = build(&cfg);
            let g = 8usize;
            let mut counts = vec![0f32; g * g];
            for p in &s.pois {
                let cx = ((p.pos.x / cfg.size_x * g as f32) as usize).min(g - 1);
                let cy = ((p.pos.y / cfg.size_y * g as f32) as usize).min(g - 1);
                counts[cy * g + cx] += 1.0;
            }
            let mean = 400.0 / (g * g) as f32;
            counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f32>() / (g * g) as f32
        };
        assert!(
            occupancy_var(PoiDistribution::ClusteredUneven)
                > 2.0 * occupancy_var(PoiDistribution::Uniform)
        );
    }

    #[test]
    fn corner_room_receives_pois() {
        // The hard-exploration subarea (x>11.5, y<4.5 in the paper map) must
        // contain data, otherwise the curiosity experiments are vacuous.
        let cfg = EnvConfig::paper_default();
        let s = build(&cfg);
        let in_room = s.pois.iter().filter(|p| p.pos.x > 11.5 && p.pos.y < 4.5).count();
        assert!(in_room >= 10, "only {in_room} PoIs in the corner room");
    }
}
