//! Worker actions: route planning `v` and energy charging `u` (Eqn 9).
//!
//! Route planning is discretized into 9 moves — stay plus the 8 compass
//! directions, each of length `max_step` — which keeps `‖v‖₂` within the
//! paper's per-slot travel bound while covering the plane.

use serde::{Deserialize, Serialize};

/// Number of discrete route-planning choices.
pub const NUM_MOVES: usize = 9;

/// A route-planning decision `v_t^w`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Move {
    /// Remain in place.
    Stay,
    /// One step north (+y).
    North,
    /// One step north-east.
    NorthEast,
    /// One step east (+x).
    East,
    /// One step south-east.
    SouthEast,
    /// One step south (−y).
    South,
    /// One step south-west.
    SouthWest,
    /// One step west (−x).
    West,
    /// One step north-west.
    NorthWest,
}

impl Move {
    /// All moves in index order.
    pub const ALL: [Move; NUM_MOVES] = [
        Move::Stay,
        Move::North,
        Move::NorthEast,
        Move::East,
        Move::SouthEast,
        Move::South,
        Move::SouthWest,
        Move::West,
        Move::NorthWest,
    ];

    /// The move with a given index; panics if out of range.
    pub fn from_index(i: usize) -> Move {
        Move::ALL[i]
    }

    /// This move's index in `ALL` (the `index_roundtrip` test pins the
    /// mapping to the array order).
    pub fn index(self) -> usize {
        match self {
            Move::Stay => 0,
            Move::North => 1,
            Move::NorthEast => 2,
            Move::East => 3,
            Move::SouthEast => 4,
            Move::South => 5,
            Move::SouthWest => 6,
            Move::West => 7,
            Move::NorthWest => 8,
        }
    }

    /// Unit direction vector (dx, dy); `Stay` is (0, 0). North is +y.
    pub fn direction(self) -> (f32, f32) {
        const D: f32 = std::f32::consts::FRAC_1_SQRT_2;
        match self {
            Move::Stay => (0.0, 0.0),
            Move::North => (0.0, 1.0),
            Move::NorthEast => (D, D),
            Move::East => (1.0, 0.0),
            Move::SouthEast => (D, -D),
            Move::South => (0.0, -1.0),
            Move::SouthWest => (-D, -D),
            Move::West => (-1.0, 0.0),
            Move::NorthWest => (-D, D),
        }
    }

    /// Displacement for a given step length.
    pub fn displacement(self, step: f32) -> (f32, f32) {
        let (dx, dy) = self.direction();
        (dx * step, dy * step)
    }
}

/// One worker's joint decision for a slot: `(u_t^w, v_t^w)`.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WorkerAction {
    /// Route planning decision.
    pub movement: Move,
    /// Energy-charging decision `u_t^w`: request charging this slot. A
    /// charging worker stays in place regardless of `movement`.
    pub charge: bool,
}

impl WorkerAction {
    /// A movement-only action.
    pub fn go(movement: Move) -> Self {
        Self { movement, charge: false }
    }

    /// A charging action.
    pub fn charge() -> Self {
        Self { movement: Move::Stay, charge: true }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for i in 0..NUM_MOVES {
            assert_eq!(Move::from_index(i).index(), i);
        }
    }

    #[test]
    fn directions_are_unit_or_zero() {
        for m in Move::ALL {
            let (dx, dy) = m.direction();
            let n = (dx * dx + dy * dy).sqrt();
            if m == Move::Stay {
                assert_eq!(n, 0.0);
            } else {
                assert!((n - 1.0).abs() < 1e-6, "{m:?} has norm {n}");
            }
        }
    }

    #[test]
    fn displacement_respects_step_bound() {
        for m in Move::ALL {
            let (dx, dy) = m.displacement(0.75);
            assert!((dx * dx + dy * dy).sqrt() <= 0.75 + 1e-6);
        }
    }

    #[test]
    fn opposite_moves_cancel() {
        let pairs = [
            (Move::North, Move::South),
            (Move::East, Move::West),
            (Move::NorthEast, Move::SouthWest),
            (Move::SouthEast, Move::NorthWest),
        ];
        for (a, b) in pairs {
            let (ax, ay) = a.direction();
            let (bx, by) = b.direction();
            assert!((ax + bx).abs() < 1e-6 && (ay + by).abs() < 1e-6);
        }
    }

    #[test]
    fn action_constructors() {
        let a = WorkerAction::go(Move::East);
        assert!(!a.charge);
        assert_eq!(a.movement, Move::East);
        let c = WorkerAction::charge();
        assert!(c.charge);
    }
}
