//! Procedural scenario families: seeded, self-validating map generators.
//!
//! `scenario.rs` draws entities for *one* hand-designed map (the paper's
//! Fig. 2(b) grid). This module widens the evaluation surface to a matrix of
//! scenario *families*, each a deterministic function of a single `u64`
//! seed:
//!
//! * [`ScenarioFamily::DefaultGrid`] — the paper map's obstacle layout with
//!   seeded entity draws (the control family);
//! * [`ScenarioFamily::CityBlockMaze`] — a city-block maze: 2×2-cell
//!   buildings on a 4-cell lattice with 1–2-cell streets, blocks knocked out
//!   per seed (connectivity holds by construction, streets are cell-aligned);
//! * [`ScenarioFamily::DriftingHotspots`] — an open map whose demand hotspot
//!   random-walks across the space over the episode's phases, leaving an
//!   elongated trail of PoI clusters;
//! * [`ScenarioFamily::HeterogeneousFleet`] — a mixed drone/vehicle fleet:
//!   drones carry a small battery (0.6·b₀), vehicles a large one (1.4·b₀);
//! * [`ScenarioFamily::RechargeScarce`] — one corner charging station, a
//!   reduced energy budget and a slow pump, à la "Learning to Recharge".
//!
//! **Seeding contract:** `generate(family, seed)` is bitwise deterministic —
//! identical `(family, seed)` pairs produce identical configs and entity
//! vectors; distinct seeds redraw obstacles (where the family randomizes
//! them) and every entity position.
//!
//! **Self-validation:** every generated scenario is checked before it is
//! returned — config validity, entity counts, placement invariants (inside
//! the space, never inside or cell-overlapping an obstacle), and mutual
//! reachability via [`DistanceField`]: every charging station and every PoI
//! must be reachable from every worker spawn. Violations surface as
//! [`EnvError::ScenarioInvariant`], never as a panic.

use crate::config::{EnvConfig, PoiDistribution};
use crate::entities::{ChargingStation, Poi, Worker};
use crate::env::CrowdsensingEnv;
use crate::error::EnvError;
use crate::geometry::{Point, Rect};
use crate::pathfind::DistanceField;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The procedural scenario families.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ScenarioFamily {
    /// The paper's Fig. 2(b) obstacle layout, entities re-drawn per seed.
    DefaultGrid,
    /// City-block obstacle maze with seeded block knockouts.
    CityBlockMaze,
    /// Open map with a demand hotspot drifting across episode phases.
    DriftingHotspots,
    /// Mixed drone (small battery) / vehicle (large battery) fleet.
    HeterogeneousFleet,
    /// One remote charging station, tight energy budget, slow pump.
    RechargeScarce,
}

impl ScenarioFamily {
    /// Every family, in fixed sweep order.
    pub const ALL: [ScenarioFamily; 5] = [
        ScenarioFamily::DefaultGrid,
        ScenarioFamily::CityBlockMaze,
        ScenarioFamily::DriftingHotspots,
        ScenarioFamily::HeterogeneousFleet,
        ScenarioFamily::RechargeScarce,
    ];

    /// Stable snake_case identifier used in fixtures, benches and reports.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioFamily::DefaultGrid => "default_grid",
            ScenarioFamily::CityBlockMaze => "city_block_maze",
            ScenarioFamily::DriftingHotspots => "drifting_hotspots",
            ScenarioFamily::HeterogeneousFleet => "heterogeneous_fleet",
            ScenarioFamily::RechargeScarce => "recharge_scarce",
        }
    }

    /// Inverse of [`Self::name`].
    pub fn from_name(name: &str) -> Option<ScenarioFamily> {
        ScenarioFamily::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Method form of [`generate`] for prelude users.
    ///
    /// # Errors
    ///
    /// Same contract as [`generate`].
    pub fn generate(self, seed: u64) -> Result<GeneratedScenario, EnvError> {
        generate(self, seed)
    }
}

/// A generated, validated scenario: the config plus explicit entities.
///
/// Entities are explicit (rather than re-derivable from `config.seed`)
/// because families may place them under constraints `scenario::build` does
/// not know about — component-restricted sampling, drifting cluster trails,
/// per-worker battery classes.
#[derive(Clone, Debug, PartialEq)]
pub struct GeneratedScenario {
    /// The family this scenario belongs to.
    pub family: ScenarioFamily,
    /// The seed it was generated from.
    pub seed: u64,
    /// Full environment configuration (obstacles included).
    pub config: EnvConfig,
    /// Worker spawns (heterogeneous batteries where the family mixes them).
    pub workers: Vec<Worker>,
    /// PoIs with initial data.
    pub pois: Vec<Poi>,
    /// Charging stations.
    pub stations: Vec<ChargingStation>,
}

impl GeneratedScenario {
    /// Instantiates a fresh environment; the entities become the reset
    /// template, so [`CrowdsensingEnv::reset`] restores this exact scenario.
    ///
    /// # Errors
    ///
    /// [`EnvError::InvalidConfig`] if the config fails validation (cannot
    /// happen for a scenario returned by [`generate`], which validates).
    pub fn try_env(&self) -> Result<CrowdsensingEnv, EnvError> {
        CrowdsensingEnv::try_from_parts(
            self.config.clone(),
            self.workers.clone(),
            self.pois.clone(),
            self.stations.clone(),
        )
    }

    /// Panicking convenience wrapper over [`Self::try_env`].
    ///
    /// # Panics
    ///
    /// If the config fails validation (cannot happen for a scenario returned
    /// by [`generate`]).
    pub fn env(&self) -> CrowdsensingEnv {
        self.try_env().unwrap_or_else(|e| panic!("{e}"))
    }
}

/// Generates and validates one scenario of `family` from `seed`.
///
/// # Errors
///
/// [`EnvError::ScenarioInvariant`] when the generated map violates a
/// placement or reachability invariant (e.g. the free space fragmented), and
/// [`EnvError::InvalidConfig`] when the family's config itself is broken —
/// both indicate a generator bug, surfaced as typed errors so harnesses can
/// report which family and seed failed.
pub fn generate(family: ScenarioFamily, seed: u64) -> Result<GeneratedScenario, EnvError> {
    // Decorrelate the family streams: two families given the same seed must
    // not share entity draws.
    let mut rng = StdRng::seed_from_u64(
        seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(family.name().len() as u64),
    );
    let scenario = match family {
        ScenarioFamily::DefaultGrid => gen_default_grid(seed, &mut rng),
        ScenarioFamily::CityBlockMaze => gen_city_block_maze(seed, &mut rng),
        ScenarioFamily::DriftingHotspots => gen_drifting_hotspots(seed, &mut rng),
        ScenarioFamily::HeterogeneousFleet => gen_heterogeneous_fleet(seed, &mut rng),
        ScenarioFamily::RechargeScarce => gen_recharge_scarce(seed, &mut rng),
    }?;
    validate(&scenario)?;
    Ok(scenario)
}

// ---- family builders -------------------------------------------------------

/// Shared base: paper physics constants, 16×16 space, shortened horizon so
/// matrix sweeps stay fast.
fn base_config(seed: u64) -> EnvConfig {
    let mut cfg = EnvConfig::paper_default();
    cfg.seed = seed;
    cfg.horizon = 40;
    cfg.num_pois = 60;
    cfg
}

fn gen_default_grid(seed: u64, rng: &mut StdRng) -> Result<GeneratedScenario, EnvError> {
    let cfg = base_config(seed);
    let free = FreeSpace::of(&cfg, ScenarioFamily::DefaultGrid)?;
    let workers = free.uniform_workers(&cfg, cfg.num_workers, rng);
    let stations = free.spread_stations(&cfg, cfg.num_stations, rng);
    // The paper's mixture: 25% uniform background, the rest around seeded
    // cluster centers (one biased toward the corner room when reachable).
    let mut centers: Vec<Point> = (0..4).map(|_| free.uniform_point(&cfg, rng)).collect();
    let corner = Point::new(cfg.size_x * 0.85, cfg.size_y * 0.15);
    if free.contains_point(&cfg, &corner) {
        centers.push(corner);
    }
    let pois = free.clustered_pois(&cfg, cfg.num_pois, &centers, 0.09 * cfg.size_x, rng);
    Ok(GeneratedScenario {
        family: ScenarioFamily::DefaultGrid,
        seed,
        config: cfg,
        workers,
        pois,
        stations,
    })
}

fn gen_city_block_maze(seed: u64, rng: &mut StdRng) -> Result<GeneratedScenario, EnvError> {
    let mut cfg = base_config(seed);
    cfg.num_pois = 48;
    cfg.poi_distribution = PoiDistribution::Uniform;
    // 2×2-cell buildings on a 4-cell lattice: block (i, j) covers cells
    // [4i+1, 4i+3) × [4j+1, 4j+3), so streets (rows/cols 0, 3–4, 7–8, 11–12,
    // 15) are whole cells wide and stay connected no matter which blocks the
    // seed keeps. Cell-aligned edges keep street cells fully obstacle-free
    // under the positive-area overlap rule the flood fill uses.
    let mut obstacles = Vec::new();
    for j in 0..4 {
        for i in 0..4 {
            if rng.gen::<f32>() < 0.78 {
                let (x0, y0) = (4.0 * i as f32 + 1.0, 4.0 * j as f32 + 1.0);
                obstacles.push(Rect::new(x0, y0, x0 + 2.0, y0 + 2.0));
            }
        }
    }
    cfg.obstacles = obstacles;
    let free = FreeSpace::of(&cfg, ScenarioFamily::CityBlockMaze)?;
    let workers = free.uniform_workers(&cfg, cfg.num_workers, rng);
    let stations = free.spread_stations(&cfg, cfg.num_stations, rng);
    let pois = (0..cfg.num_pois)
        .map(|_| Poi::new(free.uniform_point(&cfg, rng), 0.05 + 0.95 * rng.gen::<f32>()))
        .collect();
    Ok(GeneratedScenario {
        family: ScenarioFamily::CityBlockMaze,
        seed,
        config: cfg,
        workers,
        pois,
        stations,
    })
}

fn gen_drifting_hotspots(seed: u64, rng: &mut StdRng) -> Result<GeneratedScenario, EnvError> {
    let mut cfg = base_config(seed);
    cfg.obstacles = Vec::new();
    cfg.num_stations = 3;
    cfg.poi_distribution = PoiDistribution::ClusteredUneven;
    let free = FreeSpace::of(&cfg, ScenarioFamily::DriftingHotspots)?;
    let workers = free.uniform_workers(&cfg, cfg.num_workers, rng);
    let stations = free.spread_stations(&cfg, cfg.num_stations, rng);
    // The hotspot center random-walks across `phases` waypoints; PoI i is
    // drawn around the waypoint of its episode phase, producing the drift
    // trail a static map can encode.
    let phases = 6usize;
    let margin = 1.0;
    let mut center = free.uniform_point(&cfg, rng);
    let mut waypoints = Vec::with_capacity(phases);
    for _ in 0..phases {
        waypoints.push(center);
        let angle = rng.gen::<f32>() * std::f32::consts::TAU;
        let step = 2.0 + 1.5 * rng.gen::<f32>();
        center = Point::new(
            (center.x + step * angle.cos()).clamp(margin, cfg.size_x - margin),
            (center.y + step * angle.sin()).clamp(margin, cfg.size_y - margin),
        );
    }
    let pois = (0..cfg.num_pois)
        .map(|i| {
            let phase = i * phases / cfg.num_pois;
            let pos = free.gaussian_point(&cfg, waypoints[phase], 1.1, rng);
            Poi::new(pos, 0.05 + 0.95 * rng.gen::<f32>())
        })
        .collect();
    Ok(GeneratedScenario {
        family: ScenarioFamily::DriftingHotspots,
        seed,
        config: cfg,
        workers,
        pois,
        stations,
    })
}

fn gen_heterogeneous_fleet(seed: u64, rng: &mut StdRng) -> Result<GeneratedScenario, EnvError> {
    let mut cfg = base_config(seed);
    cfg.num_workers = 4;
    cfg.num_stations = 3;
    cfg.obstacles = vec![Rect::new(3.0, 3.0, 5.0, 6.0), Rect::new(10.0, 9.0, 12.5, 11.0)];
    let free = FreeSpace::of(&cfg, ScenarioFamily::HeterogeneousFleet)?;
    // Alternate drone (0.6·b₀) and vehicle (1.4·b₀) battery classes; both
    // spawn full. The global α/β energy coefficients stay shared — the
    // classes differ in endurance, which is what recharge scheduling sees.
    let workers = (0..cfg.num_workers)
        .map(|i| {
            let b0 = if i % 2 == 0 { 0.6 } else { 1.4 } * cfg.initial_energy;
            Worker::new(free.uniform_point(&cfg, rng), b0)
        })
        .collect();
    let stations = free.spread_stations(&cfg, cfg.num_stations, rng);
    let centers: Vec<Point> = (0..3).map(|_| free.uniform_point(&cfg, rng)).collect();
    let pois = free.clustered_pois(&cfg, cfg.num_pois, &centers, 0.1 * cfg.size_x, rng);
    Ok(GeneratedScenario {
        family: ScenarioFamily::HeterogeneousFleet,
        seed,
        config: cfg,
        workers,
        pois,
        stations,
    })
}

fn gen_recharge_scarce(seed: u64, rng: &mut StdRng) -> Result<GeneratedScenario, EnvError> {
    let mut cfg = base_config(seed);
    cfg.horizon = 50;
    cfg.num_pois = 50;
    cfg.num_stations = 1;
    cfg.initial_energy = 18.0;
    cfg.charge_rate = 8.0;
    cfg.obstacles = vec![Rect::new(6.5, 6.5, 9.5, 9.5)];
    cfg.poi_distribution = PoiDistribution::Uniform;
    let free = FreeSpace::of(&cfg, ScenarioFamily::RechargeScarce)?;
    let workers = free.uniform_workers(&cfg, cfg.num_workers, rng);
    // The lone station hugs a corner, so most of the map is a long round
    // trip from the pump.
    let corner = Point::new(cfg.size_x * 0.92, cfg.size_y * 0.92);
    let stations = vec![ChargingStation::new(free.nearest_point(&cfg, &corner), cfg.charge_range)];
    let pois = (0..cfg.num_pois)
        .map(|_| Poi::new(free.uniform_point(&cfg, rng), 0.05 + 0.95 * rng.gen::<f32>()))
        .collect();
    Ok(GeneratedScenario {
        family: ScenarioFamily::RechargeScarce,
        seed,
        config: cfg,
        workers,
        pois,
        stations,
    })
}

// ---- constrained placement over the free-space component -------------------

/// The largest connected component of obstacle-free cells, the sampling
/// domain for every entity — placement inside it makes mutual reachability
/// hold by construction, and validation re-derives it via [`DistanceField`].
struct FreeSpace {
    grid: usize,
    /// Cells of the component, ascending row-major index.
    cells: Vec<(usize, usize)>,
    /// Component membership by cell index.
    member: Vec<bool>,
}

impl FreeSpace {
    /// Finds the largest free component (ties: the one containing the
    /// lowest-index cell).
    fn of(cfg: &EnvConfig, family: ScenarioFamily) -> Result<FreeSpace, EnvError> {
        let g = cfg.grid;
        let blocked: Vec<bool> = (0..g * g)
            .map(|i| {
                let (cx, cy) = (i % g, i / g);
                let (x0, y0) = (cx as f32 * cfg.cell_x(), cy as f32 * cfg.cell_y());
                cfg.obstacles
                    .iter()
                    .any(|r| r.overlaps_box(x0, y0, x0 + cfg.cell_x(), y0 + cfg.cell_y()))
            })
            .collect();
        let mut seen = vec![false; g * g];
        let mut best: Option<FreeSpace> = None;
        for i in 0..g * g {
            if blocked[i] || seen[i] {
                continue;
            }
            let (cx, cy) = (i % g, i / g);
            let center =
                Point::new((cx as f32 + 0.5) * cfg.cell_x(), (cy as f32 + 0.5) * cfg.cell_y());
            let field = DistanceField::from(cfg, &center);
            let mut cells = Vec::new();
            let mut member = vec![false; g * g];
            for j in 0..g * g {
                if field.reachable(j % g, j / g) {
                    seen[j] = true;
                    member[j] = true;
                    cells.push((j % g, j / g));
                }
            }
            if best.as_ref().is_none_or(|b| cells.len() > b.cells.len()) {
                best = Some(FreeSpace { grid: g, cells, member });
            }
        }
        let free = best.ok_or_else(|| EnvError::ScenarioInvariant {
            family: family.name(),
            why: "obstacles cover every grid cell — no free space to place entities".into(),
        })?;
        // Entities need room to move: require at least a quarter of the map.
        if free.cells.len() * 4 < g * g {
            return Err(EnvError::ScenarioInvariant {
                family: family.name(),
                why: format!(
                    "largest free component has {} of {} cells — map too fragmented",
                    free.cells.len(),
                    g * g
                ),
            });
        }
        Ok(free)
    }

    fn in_component(&self, cfg: &EnvConfig, p: &Point) -> bool {
        let cx = ((p.x / cfg.cell_x()) as usize).min(self.grid - 1);
        let cy = ((p.y / cfg.cell_y()) as usize).min(self.grid - 1);
        self.member[cy * self.grid + cx]
    }

    fn contains_point(&self, cfg: &EnvConfig, p: &Point) -> bool {
        p.x >= 0.0
            && p.y >= 0.0
            && p.x <= cfg.size_x
            && p.y <= cfg.size_y
            && self.in_component(cfg, p)
    }

    /// Uniform point over the component: uniform cell, jittered interior
    /// offset (component cells are fully obstacle-free, so any interior
    /// point is valid).
    fn uniform_point(&self, cfg: &EnvConfig, rng: &mut StdRng) -> Point {
        let (cx, cy) = self.cells[rng.gen_range(0..self.cells.len())];
        Point::new(
            (cx as f32 + 0.15 + 0.7 * rng.gen::<f32>()) * cfg.cell_x(),
            (cy as f32 + 0.15 + 0.7 * rng.gen::<f32>()) * cfg.cell_y(),
        )
    }

    /// Gaussian draw around `center` rejected into the component; falls back
    /// to a uniform component point after 100 misses.
    fn gaussian_point(&self, cfg: &EnvConfig, center: Point, std: f32, rng: &mut StdRng) -> Point {
        for _ in 0..100 {
            let p = Point::new(
                (center.x + randn(rng) * std).clamp(0.05, cfg.size_x - 0.05),
                (center.y + randn(rng) * std).clamp(0.05, cfg.size_y - 0.05),
            );
            if self.in_component(cfg, &p) {
                return p;
            }
        }
        self.uniform_point(cfg, rng)
    }

    /// The component point closest to `target` (cell center, deterministic).
    fn nearest_point(&self, cfg: &EnvConfig, target: &Point) -> Point {
        let mut best = Point::new(
            (self.cells[0].0 as f32 + 0.5) * cfg.cell_x(),
            (self.cells[0].1 as f32 + 0.5) * cfg.cell_y(),
        );
        let mut best_d = f32::INFINITY;
        for &(cx, cy) in &self.cells {
            let p = Point::new((cx as f32 + 0.5) * cfg.cell_x(), (cy as f32 + 0.5) * cfg.cell_y());
            let d = p.dist(target);
            if d < best_d {
                best_d = d;
                best = p;
            }
        }
        best
    }

    fn uniform_workers(&self, cfg: &EnvConfig, n: usize, rng: &mut StdRng) -> Vec<Worker> {
        (0..n).map(|_| Worker::new(self.uniform_point(cfg, rng), cfg.initial_energy)).collect()
    }

    /// Stations at evenly spaced component cells (deterministic spread) with
    /// a small jitter off the exact cell center.
    fn spread_stations(&self, cfg: &EnvConfig, n: usize, rng: &mut StdRng) -> Vec<ChargingStation> {
        (0..n)
            .map(|i| {
                let idx = (i + 1) * self.cells.len() / (n + 1);
                let (cx, cy) = self.cells[idx.min(self.cells.len() - 1)];
                let pos = Point::new(
                    (cx as f32 + 0.3 + 0.4 * rng.gen::<f32>()) * cfg.cell_x(),
                    (cy as f32 + 0.3 + 0.4 * rng.gen::<f32>()) * cfg.cell_y(),
                );
                ChargingStation::new(pos, cfg.charge_range)
            })
            .collect()
    }

    /// Mixture PoIs: 25% uniform background, the rest spread over `centers`
    /// by round-robin, Gaussian with the given std.
    fn clustered_pois(
        &self,
        cfg: &EnvConfig,
        n: usize,
        centers: &[Point],
        std: f32,
        rng: &mut StdRng,
    ) -> Vec<Poi> {
        (0..n)
            .map(|i| {
                let pos = if i < n / 4 || centers.is_empty() {
                    self.uniform_point(cfg, rng)
                } else {
                    self.gaussian_point(cfg, centers[i % centers.len()], std, rng)
                };
                Poi::new(pos, 0.05 + 0.95 * rng.gen::<f32>())
            })
            .collect()
    }
}

/// Standard normal via Box–Muller (mirrors `scenario::randn`).
fn randn(rng: &mut StdRng) -> f32 {
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

// ---- self-validation -------------------------------------------------------

/// Checks every family invariant on a generated scenario. Public so test
/// harnesses can re-assert the contract on mutated seeds.
///
/// # Errors
///
/// [`EnvError::ScenarioInvariant`] naming the first violated invariant;
/// [`EnvError::InvalidConfig`] when the config itself fails validation.
pub fn validate(scn: &GeneratedScenario) -> Result<(), EnvError> {
    let fam = scn.family.name();
    let fail = |why: String| Err(EnvError::ScenarioInvariant { family: fam, why });
    scn.config.validate()?;
    let cfg = &scn.config;
    if scn.workers.len() != cfg.num_workers
        || scn.pois.len() != cfg.num_pois
        || scn.stations.len() != cfg.num_stations
    {
        return fail(format!(
            "entity counts ({} workers, {} PoIs, {} stations) disagree with the config \
             ({}, {}, {})",
            scn.workers.len(),
            scn.pois.len(),
            scn.stations.len(),
            cfg.num_workers,
            cfg.num_pois,
            cfg.num_stations
        ));
    }
    let placements = scn
        .workers
        .iter()
        .map(|w| ("worker", w.pos))
        .chain(scn.pois.iter().map(|p| ("PoI", p.pos)))
        .chain(scn.stations.iter().map(|s| ("station", s.pos)));
    for (kind, pos) in placements {
        if pos.x < 0.0 || pos.y < 0.0 || pos.x > cfg.size_x || pos.y > cfg.size_y {
            return fail(format!("{kind} at ({}, {}) is outside the space", pos.x, pos.y));
        }
        if cfg.obstacles.iter().any(|r| r.contains(&pos)) {
            return fail(format!("{kind} at ({}, {}) is inside an obstacle", pos.x, pos.y));
        }
    }
    for (wi, w) in scn.workers.iter().enumerate() {
        if w.energy <= 0.0 || w.energy > w.capacity {
            return fail(format!(
                "worker {wi} spawns with energy {} outside (0, capacity {}]",
                w.energy, w.capacity
            ));
        }
        // Mutual reachability from this spawn: every station (the worker can
        // recharge) and every PoI (no data is sealed off).
        let field = DistanceField::from(cfg, &w.pos);
        for (si, s) in scn.stations.iter().enumerate() {
            if field.distance_to(cfg, &s.pos).is_none() {
                return fail(format!("station {si} is unreachable from worker {wi}'s spawn"));
            }
        }
        for (pi, p) in scn.pois.iter().enumerate() {
            if field.distance_to(cfg, &p.pos).is_none() {
                return fail(format!("PoI {pi} is unreachable from worker {wi}'s spawn"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn every_family_generates_and_validates() {
        for family in ScenarioFamily::ALL {
            let scn = generate(family, 7).unwrap_or_else(|e| panic!("{family:?}: {e}"));
            assert_eq!(scn.family, family);
            assert_eq!(scn.seed, 7);
            validate(&scn).unwrap();
            let env = scn.try_env().unwrap();
            assert_eq!(env.workers().len(), scn.config.num_workers);
        }
    }

    #[test]
    fn same_seed_is_bitwise_identical() {
        for family in ScenarioFamily::ALL {
            let a = generate(family, 42).unwrap();
            let b = generate(family, 42).unwrap();
            assert_eq!(a, b, "{family:?} not deterministic");
        }
    }

    #[test]
    fn different_seed_different_scenario() {
        for family in ScenarioFamily::ALL {
            let a = generate(family, 1).unwrap();
            let b = generate(family, 2).unwrap();
            assert_ne!(a.pois, b.pois, "{family:?} ignored the seed");
        }
    }

    #[test]
    fn families_are_decorrelated_at_equal_seed() {
        let maze = generate(ScenarioFamily::CityBlockMaze, 9).unwrap();
        let drift = generate(ScenarioFamily::DriftingHotspots, 9).unwrap();
        assert_ne!(maze.workers, drift.workers);
    }

    #[test]
    fn maze_blocks_are_cell_aligned_and_streets_open() {
        let scn = generate(ScenarioFamily::CityBlockMaze, 3).unwrap();
        for r in &scn.config.obstacles {
            assert_eq!(r.x0.fract(), 0.0);
            assert_eq!(r.y0.fract(), 0.0);
            assert_eq!(r.width(), 2.0);
            assert_eq!(r.height(), 2.0);
        }
        // Street row 0 must be fully free.
        for r in &scn.config.obstacles {
            assert!(r.y0 >= 1.0);
        }
    }

    #[test]
    fn fleet_mixes_battery_classes() {
        let scn = generate(ScenarioFamily::HeterogeneousFleet, 5).unwrap();
        let caps: Vec<f32> = scn.workers.iter().map(|w| w.capacity).collect();
        assert!(caps.iter().any(|&c| c < 30.0), "no drone-class battery in {caps:?}");
        assert!(caps.iter().any(|&c| c > 50.0), "no vehicle-class battery in {caps:?}");
    }

    #[test]
    fn recharge_scarce_has_one_remote_station() {
        let scn = generate(ScenarioFamily::RechargeScarce, 11).unwrap();
        assert_eq!(scn.stations.len(), 1);
        let st = scn.stations[0].pos;
        assert!(st.x > scn.config.size_x * 0.6 && st.y > scn.config.size_y * 0.6);
        assert!(scn.config.initial_energy < 20.0);
    }

    #[test]
    fn from_name_round_trips() {
        for family in ScenarioFamily::ALL {
            assert_eq!(ScenarioFamily::from_name(family.name()), Some(family));
        }
        assert_eq!(ScenarioFamily::from_name("nope"), None);
    }

    #[test]
    fn validate_rejects_entity_in_obstacle() {
        let mut scn = generate(ScenarioFamily::DefaultGrid, 1).unwrap();
        scn.pois[0].pos = Point::new(3.0, 4.0); // inside Rect(2.5, 3, 4, 5)
        assert!(matches!(validate(&scn), Err(EnvError::ScenarioInvariant { .. })));
    }

    #[test]
    fn validate_rejects_sealed_data() {
        let mut scn = generate(ScenarioFamily::CityBlockMaze, 1).unwrap();
        // Seal a PoI inside a ring of obstacles.
        scn.config.obstacles = vec![
            Rect::new(5.0, 5.0, 11.0, 6.0),
            Rect::new(5.0, 10.0, 11.0, 11.0),
            Rect::new(5.0, 6.0, 6.0, 10.0),
            Rect::new(10.0, 6.0, 11.0, 10.0),
        ];
        for w in &mut scn.workers {
            w.pos = Point::new(1.5, 1.5);
        }
        for p in &mut scn.pois {
            p.pos = Point::new(1.5, 2.5);
        }
        for s in &mut scn.stations {
            s.pos = Point::new(2.5, 1.5);
        }
        scn.pois[0].pos = Point::new(8.0, 8.0); // in the sealed ring
        assert!(matches!(validate(&scn), Err(EnvError::ScenarioInvariant { .. })));
    }
}
