//! The paper's three evaluation metrics (Definitions 4–6).
//!
//! * `κ` — average data collection ratio (Eqn 4). The printed equation
//!   carries a spurious `1/W` factor that contradicts both Table II (κ up to
//!   0.937 with W = 2) and Fig. 6(b) (κ *increases* with W); we implement the
//!   consistent reading `κ = Σ_w Q^w / Σ_p δ₀^p`.
//! * `ξ` — average remaining data ratio (Eqn 5; the printed `δ₀/δ₀` is a
//!   typo for `δ_t^p / δ₀^p`).
//! * `ρ` — energy efficiency (Eqn 6): Jain's fairness index over per-PoI
//!   collection fractions, times the mean per-worker data-per-energy.

use crate::entities::{Poi, Worker};
use serde::{Deserialize, Serialize};

/// Snapshot of the three paper metrics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Average data collection ratio `κ_t`.
    pub data_collection_ratio: f32,
    /// Average remaining data ratio `ξ_t` (lower is better coverage).
    pub remaining_data_ratio: f32,
    /// Energy efficiency `ρ_t`.
    pub energy_efficiency: f32,
    /// The Jain fairness factor of `ρ` on its own (diagnostic).
    pub fairness_index: f32,
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over the given values; 1 when all
/// equal, `1/n` when one value dominates. Returns 0 for all-zero input.
pub fn jain_index(values: impl Iterator<Item = f32> + Clone) -> f32 {
    let n = values.clone().count();
    if n == 0 {
        return 0.0;
    }
    let sum: f32 = values.clone().sum();
    let sum_sq: f32 = values.map(|v| v * v).sum();
    if sum_sq <= 0.0 {
        0.0
    } else {
        (sum * sum) / (n as f32 * sum_sq)
    }
}

/// Computes all metrics from the current entity states.
pub fn compute(workers: &[Worker], pois: &[Poi]) -> Metrics {
    let initial_total: f32 = pois.iter().map(|p| p.initial_data).sum();
    let collected_total: f32 = workers.iter().map(|w| w.total_collected).sum();
    let kappa = if initial_total > 0.0 { (collected_total / initial_total).min(1.0) } else { 0.0 };

    let xi = if pois.is_empty() {
        0.0
    } else {
        pois.iter().map(Poi::remaining_fraction).sum::<f32>() / pois.len() as f32
    };

    // Jain fairness over per-PoI collection fractions. Eqn (6) divides each
    // fraction by λ, but Jain's index is scale invariant so the factor
    // cancels exactly.
    let fairness = jain_index(pois.iter().map(Poi::collected_fraction));

    let per_worker_eff = if workers.is_empty() {
        0.0
    } else {
        workers
            .iter()
            .map(
                |w| if w.total_consumed > 0.0 { w.total_collected / w.total_consumed } else { 0.0 },
            )
            .sum::<f32>()
            / workers.len() as f32
    };

    Metrics {
        data_collection_ratio: kappa,
        remaining_data_ratio: xi,
        energy_efficiency: fairness * per_worker_eff,
        fairness_index: fairness,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::geometry::Point;

    fn poi(initial: f32, remaining: f32) -> Poi {
        let mut p = Poi::new(Point::new(0.0, 0.0), initial);
        p.data = remaining;
        p
    }

    fn worker(collected: f32, consumed: f32) -> Worker {
        let mut w = Worker::new(Point::new(0.0, 0.0), 40.0);
        w.total_collected = collected;
        w.total_consumed = consumed;
        w
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(jain_index([1.0, 1.0, 1.0].into_iter()), 1.0);
        let one_hot = jain_index([1.0, 0.0, 0.0, 0.0].into_iter());
        assert!((one_hot - 0.25).abs() < 1e-6);
        assert_eq!(jain_index(std::iter::empty()), 0.0);
        assert_eq!(jain_index([0.0, 0.0].into_iter()), 0.0);
    }

    #[test]
    fn jain_index_scale_invariant() {
        let a = jain_index([0.2, 0.5, 0.9].into_iter());
        let b = jain_index([2.0, 5.0, 9.0].into_iter());
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn kappa_is_total_fraction() {
        let pois = vec![poi(1.0, 1.0), poi(1.0, 1.0)];
        let workers = vec![worker(0.5, 1.0), worker(0.5, 1.0)];
        let m = compute(&workers, &pois);
        assert!((m.data_collection_ratio - 0.5).abs() < 1e-6);
    }

    #[test]
    fn xi_is_mean_remaining_fraction() {
        let pois = vec![poi(1.0, 0.0), poi(1.0, 1.0)];
        let m = compute(&[], &pois);
        assert!((m.remaining_data_ratio - 0.5).abs() < 1e-6);
    }

    #[test]
    fn rho_rewards_fair_coverage() {
        // Same total collection and energy, but one case covers both PoIs
        // evenly and the other drains a single PoI: fair coverage must score
        // a higher ρ.
        let even = vec![poi(1.0, 0.5), poi(1.0, 0.5)];
        let skew = vec![poi(1.0, 0.0), poi(1.0, 1.0)];
        let workers = vec![worker(1.0, 2.0)];
        let rho_even = compute(&workers, &even).energy_efficiency;
        let rho_skew = compute(&workers, &skew).energy_efficiency;
        assert!(rho_even > rho_skew, "even {rho_even} vs skew {rho_skew}");
    }

    #[test]
    fn zero_energy_worker_contributes_zero_efficiency() {
        let pois = vec![poi(1.0, 0.5)];
        let workers = vec![worker(0.5, 0.0)];
        let m = compute(&workers, &pois);
        assert_eq!(m.energy_efficiency, 0.0);
    }

    #[test]
    fn empty_world_is_all_zero() {
        let m = compute(&[], &[]);
        assert_eq!(m, Metrics::default());
    }

    #[test]
    fn metrics_are_bounded() {
        let pois = vec![poi(1.0, 0.2), poi(0.5, 0.5), poi(0.8, 0.0)];
        let workers = vec![worker(1.6, 3.0), worker(0.0, 0.5)];
        let m = compute(&workers, &pois);
        assert!((0.0..=1.0).contains(&m.data_collection_ratio));
        assert!((0.0..=1.0).contains(&m.remaining_data_ratio));
        assert!((0.0..=1.0).contains(&m.fairness_index));
        assert!(m.energy_efficiency >= 0.0);
    }
}
