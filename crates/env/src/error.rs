//! Typed errors for scenario construction and replay.
//!
//! Library code in this crate never unwraps on user input: configuration
//! problems, impossible hand-built maps and replay divergence all surface as
//! [`EnvError`] values. The panicking convenience constructors
//! ([`crate::env::CrowdsensingEnv::new`], [`crate::builder::MapBuilder::build`])
//! are thin wrappers over the fallible `try_*` variants.

use std::fmt;

/// Everything that can go wrong building or replaying a scenario.
#[derive(Clone, Debug, PartialEq)]
pub enum EnvError {
    /// The configuration failed [`crate::config::EnvConfig::validate`]; the
    /// string describes the first inconsistency found.
    InvalidConfig(String),
    /// A hand-built map has no worker spawn point.
    NoWorkerSpawn,
    /// A hand-placed entity sits inside an obstacle rectangle.
    EntityInObstacle {
        /// What was placed there (`"PoI"`, `"worker"`, `"station"`).
        kind: &'static str,
        /// Entity x coordinate.
        x: f32,
        /// Entity y coordinate.
        y: f32,
    },
    /// Replaying a recording produced final metrics different from the ones
    /// captured at record time — a determinism breach.
    ReplayDivergence,
    /// A recording failed to serialize.
    Serialize(String),
    /// A shortest-path query asked for a target cell that is blocked or not
    /// connected to the source ([`crate::pathfind::DistanceField::path_to`]).
    Unreachable {
        /// Source cell `(cx, cy)` of the distance field.
        from: (usize, usize),
        /// Target cell `(cx, cy)` that could not be reached.
        to: (usize, usize),
    },
    /// A procedurally generated scenario violated one of its family's
    /// self-validation invariants ([`crate::scenario_gen::generate`]).
    ScenarioInvariant {
        /// Family name (`ScenarioFamily::name`).
        family: &'static str,
        /// The first invariant violation found.
        why: String,
    },
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::InvalidConfig(why) => write!(f, "invalid EnvConfig: {why}"),
            EnvError::NoWorkerSpawn => write!(f, "place at least one worker"),
            EnvError::EntityInObstacle { kind, x, y } => {
                write!(f, "{kind} at ({x}, {y}) is inside an obstacle")
            }
            EnvError::ReplayDivergence => {
                write!(f, "replay diverged from the recording — determinism breach")
            }
            EnvError::Serialize(why) => write!(f, "recording failed to serialize: {why}"),
            EnvError::Unreachable { from, to } => {
                write!(f, "cell ({}, {}) is unreachable from ({}, {})", to.0, to.1, from.0, from.1)
            }
            EnvError::ScenarioInvariant { family, why } => {
                write!(f, "generated `{family}` scenario violates an invariant: {why}")
            }
        }
    }
}

impl std::error::Error for EnvError {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_problem() {
        let e = EnvError::InvalidConfig("grid resolution must be positive".into());
        assert!(e.to_string().contains("grid resolution"));
        let e = EnvError::EntityInObstacle { kind: "PoI", x: 1.5, y: 2.0 };
        assert!(e.to_string().contains("PoI at (1.5, 2)"));
        let boxed: Box<dyn std::error::Error> = Box::new(EnvError::NoWorkerSpawn);
        assert!(boxed.to_string().contains("worker"));
    }
}
