//! # vc-env — the crowdsensing simulator of the DRL-CEWS reproduction
//!
//! A deterministic discrete-time 2-D simulator of the paper's system model
//! (Section III): intelligent workers (drones / driverless cars) roam a
//! bounded space containing unevenly distributed PoIs, rectangular obstacles
//! — including the hard-exploration corner room of Fig. 2(b) — and charging
//! stations with finite service range.
//!
//! The paper evaluated on a Unity 3-D scene; the learning problem, however,
//! lives entirely on the 2-D "crowdsensing space" that scene renders, which
//! is what this crate implements exactly: the collection model (Eqns 1–2),
//! the energy model (Eqn 3), the evaluation metrics κ/ξ/ρ (Eqns 4–6), the
//! sparse extrinsic reward (Eqns 18–19) and the dense baseline reward
//! (Eqn 20), plus the 3-channel state encoding of Section V.
//!
//! ```
//! use vc_env::prelude::*;
//!
//! let mut env = CrowdsensingEnv::new(EnvConfig::tiny());
//! let actions = vec![WorkerAction::go(Move::East); env.workers().len()];
//! let result = env.step(&actions);
//! assert_eq!(result.t, 1);
//! let m = env.metrics();
//! assert!(m.data_collection_ratio >= 0.0);
//! ```

pub mod action;
pub mod analysis;
pub mod builder;
pub mod config;
pub mod entities;
pub mod env;
pub mod error;
pub mod fleet;
pub mod geometry;
pub mod metrics;
pub mod pathfind;
pub mod recording;
pub mod reward;
pub mod scenario;
pub mod scenario_gen;
pub mod state;
pub mod summary;
pub mod trajectory;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::action::{Move, WorkerAction, NUM_MOVES};
    pub use crate::analysis::MetricSeries;
    pub use crate::builder::MapBuilder;
    pub use crate::config::{EnvConfig, PoiDistribution};
    pub use crate::entities::{ChargingStation, Poi, Worker};
    pub use crate::env::{CrowdsensingEnv, StepResult, WorkerOutcome};
    pub use crate::error::EnvError;
    pub use crate::fleet::{FleetState, FleetStepView, FLEET_PAR_MIN_WORKERS};
    pub use crate::geometry::{Point, Rect};
    pub use crate::metrics::{jain_index, Metrics};
    pub use crate::pathfind::DistanceField;
    pub use crate::recording::{Recorder, Recording};
    pub use crate::reward::{dense_reward, extrinsic_reward, sparse_reward, RewardMode};
    pub use crate::scenario_gen::{GeneratedScenario, ScenarioFamily};
    pub use crate::state::{encode, encode_into, state_len, state_shape, STATE_CHANNELS};
    pub use crate::summary::{EpisodeSummary, WorkerSummary};
    pub use crate::trajectory::{HeatMap, Trajectory};
}
