//! Per-slot metric time series — the data behind training/mission curves.
//!
//! [`MetricSeries`] samples κ/ξ/ρ after every step of a live episode or a
//! [`crate::recording::Recording`] replay, producing the per-slot curves
//! that the paper plots its training figures from (and that downstream
//! users plot mission progress from).

use crate::env::CrowdsensingEnv;
use crate::metrics::Metrics;
use crate::recording::Recording;
use serde::{Deserialize, Serialize};

/// κ/ξ/ρ sampled once per time slot.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricSeries {
    /// Data collection ratio κ per slot.
    pub kappa: Vec<f32>,
    /// Remaining data ratio ξ per slot.
    pub xi: Vec<f32>,
    /// Energy efficiency ρ per slot.
    pub rho: Vec<f32>,
}

impl MetricSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded slots.
    pub fn len(&self) -> usize {
        self.kappa.len()
    }

    /// True if nothing has been sampled.
    pub fn is_empty(&self) -> bool {
        self.kappa.is_empty()
    }

    /// Samples the environment's current metrics.
    pub fn sample(&mut self, env: &CrowdsensingEnv) {
        let m = env.metrics();
        self.push(m);
    }

    /// Appends an already-computed metrics snapshot.
    pub fn push(&mut self, m: Metrics) {
        self.kappa.push(m.data_collection_ratio);
        self.xi.push(m.remaining_data_ratio);
        self.rho.push(m.energy_efficiency);
    }

    /// Builds the series by replaying a recording.
    pub fn from_recording(recording: &Recording) -> Self {
        let mut series = Self::new();
        recording.replay(|env, _| series.sample(env));
        series
    }

    /// The slot at which κ first reaches `threshold`, if ever — the
    /// "time-to-coverage" statistic.
    pub fn time_to_kappa(&self, threshold: f32) -> Option<usize> {
        self.kappa.iter().position(|&k| k >= threshold)
    }

    /// Area under the κ curve, normalized to `[0, 1]` — rewards collecting
    /// *early*, which distinguishes two policies with equal final κ.
    pub fn kappa_auc(&self) -> f32 {
        if self.kappa.is_empty() {
            return 0.0;
        }
        self.kappa.iter().sum::<f32>() / self.kappa.len() as f32
    }

    /// Renders one channel as a CSV column block (`slot,kappa,xi,rho`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("slot,kappa,xi,rho\n");
        for i in 0..self.len() {
            out.push_str(&format!(
                "{i},{:.6},{:.6},{:.6}\n",
                self.kappa[i], self.xi[i], self.rho[i]
            ));
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::action::{Move, WorkerAction};
    use crate::builder::MapBuilder;
    use crate::recording::Recorder;

    fn scenario() -> CrowdsensingEnv {
        MapBuilder::new(8.0, 8.0, 8)
            .poi(4.0, 4.5, 1.0)
            .poi(4.5, 4.0, 1.0)
            .worker(4.0, 4.0)
            .horizon(10)
            .build()
    }

    #[test]
    fn series_is_monotone_in_kappa() {
        let mut env = scenario();
        let mut series = MetricSeries::new();
        while !env.done() {
            env.step(&[WorkerAction::go(Move::Stay)]);
            series.sample(&env);
        }
        assert_eq!(series.len(), 10);
        for w in series.kappa.windows(2) {
            assert!(w[1] >= w[0] - 1e-6, "kappa decreased: {w:?}");
        }
        // ξ mirrors κ downward.
        assert!(series.xi.last().unwrap() < series.xi.first().unwrap());
    }

    #[test]
    fn time_to_kappa_and_auc() {
        let mut s = MetricSeries::new();
        for k in [0.0f32, 0.2, 0.5, 0.9] {
            s.push(Metrics { data_collection_ratio: k, ..Default::default() });
        }
        assert_eq!(s.time_to_kappa(0.5), Some(2));
        assert_eq!(s.time_to_kappa(0.95), None);
        assert!((s.kappa_auc() - 0.4).abs() < 1e-6);
        assert_eq!(MetricSeries::new().kappa_auc(), 0.0);
    }

    #[test]
    fn from_recording_matches_live_series() {
        let mut env = scenario();
        let mut recorder = Recorder::new(&env);
        let mut live = MetricSeries::new();
        while !env.done() {
            let actions = [WorkerAction::go(Move::Stay)];
            recorder.log(&actions);
            env.step(&actions);
            live.sample(&env);
        }
        let recording = recorder.finish(&env);
        let replayed = MetricSeries::from_recording(&recording);
        assert_eq!(replayed, live);
    }

    #[test]
    fn csv_has_one_row_per_slot() {
        let mut s = MetricSeries::new();
        s.push(Metrics::default());
        s.push(Metrics::default());
        let csv = s.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("slot,kappa,xi,rho"));
    }

    #[test]
    fn early_collector_wins_auc_over_late_collector() {
        // Same final κ, different timing: the AUC statistic must prefer the
        // early collector.
        let mut early = MetricSeries::new();
        let mut late = MetricSeries::new();
        for i in 0..10 {
            let e = if i < 2 { 0.0 } else { 0.8 };
            let l = if i < 8 { 0.0 } else { 0.8 };
            early.push(Metrics { data_collection_ratio: e, ..Default::default() });
            late.push(Metrics { data_collection_ratio: l, ..Default::default() });
        }
        assert!(early.kappa_auc() > late.kappa_auc());
        assert_eq!(early.kappa.last(), late.kappa.last());
    }
}
