//! Fluent scenario construction for custom maps.
//!
//! [`MapBuilder`] assembles an [`EnvConfig`] plus explicit entity placements
//! (PoIs, stations, worker spawns) for scenarios that the seeded random
//! generator cannot express — benchmark fixtures, regression scenarios, and
//! the hand-designed maps of downstream applications.

use crate::config::EnvConfig;
use crate::entities::{ChargingStation, Poi, Worker};
use crate::env::CrowdsensingEnv;
use crate::error::EnvError;
use crate::geometry::{Point, Rect};

/// Builder for hand-placed scenarios.
#[derive(Clone, Debug)]
pub struct MapBuilder {
    cfg: EnvConfig,
    pois: Vec<(Point, f32)>,
    stations: Vec<Point>,
    spawns: Vec<Point>,
}

impl MapBuilder {
    /// Starts from an empty `size × size` space with no random entities.
    pub fn new(size_x: f32, size_y: f32, grid: usize) -> Self {
        let mut cfg = EnvConfig::paper_default();
        cfg.size_x = size_x;
        cfg.size_y = size_y;
        cfg.grid = grid;
        cfg.obstacles.clear();
        cfg.num_pois = 0;
        cfg.num_stations = 0;
        cfg.num_workers = 0;
        Self { cfg, pois: Vec::new(), stations: Vec::new(), spawns: Vec::new() }
    }

    /// Sets the episode horizon.
    pub fn horizon(mut self, t: usize) -> Self {
        self.cfg.horizon = t;
        self
    }

    /// Sets the initial energy budget b₀.
    pub fn energy(mut self, b0: f32) -> Self {
        self.cfg.initial_energy = b0;
        self
    }

    /// Adds a rectangular obstacle.
    pub fn obstacle(mut self, x0: f32, y0: f32, x1: f32, y1: f32) -> Self {
        self.cfg.obstacles.push(Rect::new(x0, y0, x1, y1));
        self
    }

    /// Adds a PoI with initial data `delta0`.
    pub fn poi(mut self, x: f32, y: f32, delta0: f32) -> Self {
        assert!(delta0 > 0.0, "PoI data must be positive");
        self.pois.push((Point::new(x, y), delta0));
        self
    }

    /// Adds a line of `n` equally spaced PoIs from `(x0,y0)` to `(x1,y1)`.
    pub fn poi_line(mut self, x0: f32, y0: f32, x1: f32, y1: f32, n: usize, delta0: f32) -> Self {
        assert!(n >= 1);
        for i in 0..n {
            let t = if n == 1 { 0.5 } else { i as f32 / (n - 1) as f32 };
            self.pois.push((Point::new(x0 + t * (x1 - x0), y0 + t * (y1 - y0)), delta0));
        }
        self
    }

    /// Adds a charging station.
    pub fn station(mut self, x: f32, y: f32) -> Self {
        self.stations.push(Point::new(x, y));
        self
    }

    /// Adds a worker spawn point.
    pub fn worker(mut self, x: f32, y: f32) -> Self {
        self.spawns.push(Point::new(x, y));
        self
    }

    /// Overrides any other config field.
    pub fn configure(mut self, f: impl FnOnce(&mut EnvConfig)) -> Self {
        f(&mut self.cfg);
        self
    }

    /// The resulting config (counts synced to the placed entities).
    pub fn config(&self) -> EnvConfig {
        let mut cfg = self.cfg.clone();
        cfg.num_pois = self.pois.len();
        cfg.num_stations = self.stations.len();
        cfg.num_workers = self.spawns.len();
        cfg
    }

    /// Builds the environment with the hand-placed entities.
    ///
    /// # Panics
    ///
    /// If no worker spawn was added or an entity sits inside an obstacle;
    /// use [`Self::try_build`] to handle the error.
    pub fn build(self) -> CrowdsensingEnv {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Self::build`].
    ///
    /// # Errors
    ///
    /// [`EnvError::NoWorkerSpawn`] without a spawn point,
    /// [`EnvError::InvalidConfig`] when the synthesized config is
    /// inconsistent, and [`EnvError::EntityInObstacle`] when a PoI, spawn or
    /// station lands inside an obstacle rectangle.
    pub fn try_build(self) -> Result<CrowdsensingEnv, EnvError> {
        if self.spawns.is_empty() {
            return Err(EnvError::NoWorkerSpawn);
        }
        let cfg = self.config();
        cfg.validate()?;
        for (p, _) in &self.pois {
            if cfg.obstacles.iter().any(|r| r.contains(p)) {
                return Err(EnvError::EntityInObstacle { kind: "PoI", x: p.x, y: p.y });
            }
        }
        for (kind, p) in self
            .spawns
            .iter()
            .map(|p| ("worker", p))
            .chain(self.stations.iter().map(|p| ("station", p)))
        {
            if cfg.obstacles.iter().any(|r| r.contains(p)) {
                return Err(EnvError::EntityInObstacle { kind, x: p.x, y: p.y });
            }
        }
        let workers = self.spawns.iter().map(|p| Worker::new(*p, cfg.initial_energy)).collect();
        let pois = self.pois.iter().map(|(p, d)| Poi::new(*p, *d)).collect();
        let stations =
            self.stations.iter().map(|p| ChargingStation::new(*p, cfg.charge_range)).collect();
        CrowdsensingEnv::try_from_parts(cfg, workers, pois, stations)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::action::{Move, WorkerAction};

    #[test]
    fn builds_hand_placed_scenario() {
        let env = MapBuilder::new(8.0, 8.0, 8)
            .horizon(20)
            .energy(30.0)
            .poi(4.0, 4.0, 0.9)
            .poi_line(1.0, 1.0, 7.0, 1.0, 4, 0.5)
            .station(2.0, 6.0)
            .worker(4.0, 3.0)
            .build();
        assert_eq!(env.pois().len(), 5);
        assert_eq!(env.stations().len(), 1);
        assert_eq!(env.workers().len(), 1);
        assert_eq!(env.workers()[0].energy, 30.0);
        assert_eq!(env.config().horizon, 20);
    }

    #[test]
    fn built_env_steps_normally() {
        let mut env = MapBuilder::new(8.0, 8.0, 8).poi(4.0, 4.5, 1.0).worker(4.0, 4.0).build();
        let r = env.step(&[WorkerAction::go(Move::Stay)]);
        // The PoI is within sensing range 0.8 of the spawn.
        assert!(r.outcomes[0].collected > 0.0);
    }

    #[test]
    fn poi_line_endpoints() {
        let b = MapBuilder::new(8.0, 8.0, 8).poi_line(1.0, 2.0, 5.0, 2.0, 3, 0.4).worker(0.5, 0.5);
        let env = b.build();
        assert_eq!(env.pois()[0].pos, Point::new(1.0, 2.0));
        assert_eq!(env.pois()[2].pos, Point::new(5.0, 2.0));
        assert_eq!(env.pois()[1].pos, Point::new(3.0, 2.0));
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn missing_worker_panics() {
        MapBuilder::new(8.0, 8.0, 8).poi(1.0, 1.0, 0.5).build();
    }

    #[test]
    #[should_panic(expected = "inside an obstacle")]
    fn poi_inside_obstacle_panics() {
        MapBuilder::new(8.0, 8.0, 8)
            .obstacle(3.0, 3.0, 5.0, 5.0)
            .poi(4.0, 4.0, 0.5)
            .worker(1.0, 1.0)
            .build();
    }

    #[test]
    fn try_build_reports_typed_errors() {
        let err = MapBuilder::new(8.0, 8.0, 8).poi(1.0, 1.0, 0.5).try_build().unwrap_err();
        assert_eq!(err, EnvError::NoWorkerSpawn);
        let err = MapBuilder::new(8.0, 8.0, 8)
            .obstacle(3.0, 3.0, 5.0, 5.0)
            .station(4.0, 4.0)
            .worker(1.0, 1.0)
            .try_build()
            .unwrap_err();
        assert_eq!(err, EnvError::EntityInObstacle { kind: "station", x: 4.0, y: 4.0 });
    }

    #[test]
    fn reset_regenerates_hand_placed_scenario() {
        let mut env = MapBuilder::new(8.0, 8.0, 8).poi(4.0, 4.5, 1.0).worker(4.0, 4.0).build();
        let initial = env.pois().to_vec();
        env.step(&[WorkerAction::go(Move::Stay)]);
        assert_ne!(env.pois(), &initial[..]);
        env.reset();
        assert_eq!(env.pois(), &initial[..], "reset must restore the designed map");
        assert_eq!(env.time(), 0);
    }
}
