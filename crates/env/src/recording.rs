//! Episode recording and deterministic replay.
//!
//! A [`Recording`] captures the scenario config plus every joint action of
//! an episode. Because the simulator is deterministic, replaying the
//! recording reproduces the episode exactly — the debugging/visualization
//! backbone for trajectory figures and for auditing surprising evaluation
//! results.

use crate::action::WorkerAction;
use crate::config::EnvConfig;
use crate::entities::{ChargingStation, Poi, Worker};
use crate::env::{CrowdsensingEnv, StepResult};
use crate::error::EnvError;
use crate::metrics::Metrics;
use serde::{Deserialize, Serialize};

/// A replayable episode: config + initial entities + action log.
///
/// The entities are snapshotted explicitly (not re-derived from the config
/// seed) so that hand-placed [`crate::builder::MapBuilder`] scenarios replay
/// exactly like seeded ones.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Recording {
    /// The scenario configuration at record time.
    pub config: EnvConfig,
    /// The workers at slot 0.
    pub workers: Vec<Worker>,
    /// The PoIs at slot 0.
    pub pois: Vec<Poi>,
    /// The charging stations at slot 0.
    pub stations: Vec<ChargingStation>,
    /// `actions[t]` is the joint action taken at slot `t`.
    pub actions: Vec<Vec<WorkerAction>>,
    /// Final metrics at recording time (for integrity checks on replay).
    pub final_metrics: Metrics,
}

impl Recording {
    /// Number of recorded slots.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True if no actions were recorded.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// [`EnvError::Serialize`] when the JSON encoder refuses the recording
    /// (it never does for recordings produced by [`Recorder`]).
    pub fn to_json(&self) -> Result<String, EnvError> {
        serde_json::to_string(self).map_err(|e| EnvError::Serialize(e.to_string()))
    }

    /// Deserializes from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Replays the episode on a fresh environment, calling `observe` after
    /// every step, and returns the final environment.
    ///
    /// # Panics
    ///
    /// If the replayed final metrics diverge from the recorded ones (a
    /// determinism breach); use [`Self::try_replay`] to handle the error.
    pub fn replay(&self, observe: impl FnMut(&CrowdsensingEnv, &StepResult)) -> CrowdsensingEnv {
        self.try_replay(observe).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Self::replay`].
    ///
    /// # Errors
    ///
    /// [`EnvError::InvalidConfig`] when the recorded config no longer
    /// validates, [`EnvError::ReplayDivergence`] when the replayed final
    /// metrics differ from the recorded ones.
    pub fn try_replay(
        &self,
        mut observe: impl FnMut(&CrowdsensingEnv, &StepResult),
    ) -> Result<CrowdsensingEnv, EnvError> {
        let mut env = CrowdsensingEnv::try_from_parts(
            self.config.clone(),
            self.workers.clone(),
            self.pois.clone(),
            self.stations.clone(),
        )?;
        for actions in &self.actions {
            let result = env.step(actions);
            observe(&env, &result);
        }
        if env.metrics() != self.final_metrics {
            return Err(EnvError::ReplayDivergence);
        }
        Ok(env)
    }
}

/// Records an episode as it is driven.
#[derive(Debug)]
pub struct Recorder {
    config: EnvConfig,
    workers: Vec<Worker>,
    pois: Vec<Poi>,
    stations: Vec<ChargingStation>,
    actions: Vec<Vec<WorkerAction>>,
}

impl Recorder {
    /// Starts recording for an environment (capture it *before* stepping so
    /// the slot-0 entity snapshot is pristine).
    pub fn new(env: &CrowdsensingEnv) -> Self {
        assert_eq!(env.time(), 0, "start recording before the first step");
        Self {
            config: env.config().clone(),
            workers: env.workers().to_vec(),
            pois: env.pois().to_vec(),
            stations: env.stations().to_vec(),
            actions: Vec::new(),
        }
    }

    /// Logs one joint action (call once per `env.step`).
    pub fn log(&mut self, actions: &[WorkerAction]) {
        self.actions.push(actions.to_vec());
    }

    /// Finishes the recording, capturing the final metrics for replay
    /// verification.
    pub fn finish(self, env: &CrowdsensingEnv) -> Recording {
        assert_eq!(
            env.time(),
            self.actions.len(),
            "one logged action set per executed step required"
        );
        Recording {
            config: self.config,
            workers: self.workers,
            pois: self.pois,
            stations: self.stations,
            actions: self.actions,
            final_metrics: env.metrics(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::action::Move;
    use crate::config::EnvConfig;

    fn drive(cfg: EnvConfig, moves: &[Move]) -> Recording {
        let mut env = CrowdsensingEnv::new(cfg);
        let mut rec = Recorder::new(&env);
        for &mv in moves {
            let actions = vec![WorkerAction::go(mv); env.workers().len()];
            rec.log(&actions);
            env.step(&actions);
        }
        rec.finish(&env)
    }

    #[test]
    fn record_and_replay_roundtrip() {
        let rec = drive(EnvConfig::tiny(), &[Move::East, Move::North, Move::East, Move::Stay]);
        assert_eq!(rec.len(), 4);
        let mut observed = 0;
        let env = rec.replay(|_, _| observed += 1);
        assert_eq!(observed, 4);
        assert_eq!(env.metrics(), rec.final_metrics);
    }

    #[test]
    fn json_roundtrip_preserves_recording() {
        let rec = drive(EnvConfig::tiny(), &[Move::South, Move::West]);
        let back = Recording::from_json(&rec.to_json().unwrap()).unwrap();
        assert_eq!(back, rec);
        back.replay(|_, _| {});
    }

    #[test]
    fn tampered_recording_is_detected() {
        let mut rec = drive(EnvConfig::tiny(), &[Move::East, Move::East]);
        rec.final_metrics.data_collection_ratio += 0.5;
        let err = rec.try_replay(|_, _| {}).unwrap_err();
        assert_eq!(err, crate::error::EnvError::ReplayDivergence);
    }

    #[test]
    #[should_panic(expected = "determinism breach")]
    fn tampered_recording_panics_via_replay() {
        let mut rec = drive(EnvConfig::tiny(), &[Move::East, Move::East]);
        rec.final_metrics.data_collection_ratio += 0.5;
        rec.replay(|_, _| {});
    }

    #[test]
    #[should_panic(expected = "before the first step")]
    fn recorder_must_start_fresh() {
        let mut env = CrowdsensingEnv::new(EnvConfig::tiny());
        env.step(&vec![WorkerAction::go(Move::Stay); env.workers().len()]);
        Recorder::new(&env);
    }

    #[test]
    #[should_panic(expected = "one logged action set")]
    fn unlogged_steps_are_rejected() {
        let mut env = CrowdsensingEnv::new(EnvConfig::tiny());
        let rec = Recorder::new(&env);
        env.step(&vec![WorkerAction::go(Move::Stay); env.workers().len()]);
        rec.finish(&env);
    }
}
