//! Obstacle-aware grid distances.
//!
//! A [`DistanceField`] is a BFS flood fill over the state grid with obstacle
//! cells blocked — the shortest-path structure of the map that straight-line
//! Euclidean distance ignores. Used for map analysis (e.g. verifying the
//! hard-exploration corner room is reachable only through its passage) and
//! available to planners that want true travel distances to stations.

use crate::config::EnvConfig;
use crate::error::EnvError;
use crate::geometry::Point;
use crate::state::cell_of;
use std::collections::VecDeque;

/// Per-cell hop counts from a source, `None` where unreachable or blocked.
#[derive(Clone, Debug)]
pub struct DistanceField {
    grid: usize,
    source: (usize, usize),
    dist: Vec<Option<u32>>,
}

impl DistanceField {
    /// Flood-fills from the cell containing `source`. Cells whose centers
    /// fall inside an obstacle are blocked; movement is 8-connected
    /// (matching the worker move set).
    pub fn from(cfg: &EnvConfig, source: &Point) -> Self {
        let g = cfg.grid;
        let blocked: Vec<bool> = (0..g * g)
            .map(|i| {
                let (cx, cy) = (i % g, i / g);
                let (x0, y0) = (cx as f32 * cfg.cell_x(), cy as f32 * cfg.cell_y());
                let (x1, y1) = (x0 + cfg.cell_x(), y0 + cfg.cell_y());
                cfg.obstacles.iter().any(|r| r.overlaps_box(x0, y0, x1, y1))
            })
            .collect();

        let mut dist = vec![None; g * g];
        let (sx, sy) = cell_of(cfg, source);
        let start = sy * g + sx;
        let mut queue = VecDeque::new();
        if !blocked[start] {
            dist[start] = Some(0);
            // Queue entries carry their distance, so the fill never has to
            // re-read (and unwrap) the per-cell option.
            queue.push_back((start, 0u32));
        }
        while let Some((i, d)) = queue.pop_front() {
            let (cx, cy) = (i % g, i / g);
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let nx = cx as i32 + dx;
                    let ny = cy as i32 + dy;
                    if nx < 0 || ny < 0 || nx >= g as i32 || ny >= g as i32 {
                        continue;
                    }
                    let ni = ny as usize * g + nx as usize;
                    if blocked[ni] || dist[ni].is_some() {
                        continue;
                    }
                    dist[ni] = Some(d + 1);
                    queue.push_back((ni, d + 1));
                }
            }
        }
        Self { grid: g, source: (sx, sy), dist }
    }

    /// Hop distance to the cell containing `to`, or `None` if unreachable.
    pub fn distance_to(&self, cfg: &EnvConfig, to: &Point) -> Option<u32> {
        let (cx, cy) = cell_of(cfg, to);
        self.dist[cy * self.grid + cx]
    }

    /// Whether cell `(cx, cy)` was reached by the flood fill.
    pub fn reachable(&self, cx: usize, cy: usize) -> bool {
        cx < self.grid && cy < self.grid && self.dist[cy * self.grid + cx].is_some()
    }

    /// The source cell the field was filled from.
    pub fn source_cell(&self) -> (usize, usize) {
        self.source
    }

    /// Extracts one shortest cell path from the source to the cell containing
    /// `to`, inclusive of both endpoint cells. The path follows the BFS
    /// distance gradient, so it is exactly `distance_to` hops long and never
    /// enters a blocked cell. Deterministic: ties between equally short
    /// predecessors break in fixed neighbor-scan order.
    ///
    /// # Errors
    ///
    /// [`EnvError::Unreachable`] when the target cell is blocked, lies in a
    /// different connected component, or the source itself sits inside an
    /// obstacle — a typed error instead of a panic, so planners can probe
    /// arbitrary targets.
    pub fn path_to(&self, cfg: &EnvConfig, to: &Point) -> Result<Vec<(usize, usize)>, EnvError> {
        let g = self.grid;
        let (tx, ty) = cell_of(cfg, to);
        let unreachable = EnvError::Unreachable { from: self.source, to: (tx, ty) };
        let Some(mut d) = self.dist[ty * g + tx] else {
            return Err(unreachable);
        };
        let mut path = Vec::with_capacity(d as usize + 1);
        let (mut cx, mut cy) = (tx, ty);
        path.push((cx, cy));
        while d > 0 {
            let mut stepped = false;
            'scan: for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let nx = cx as i32 + dx;
                    let ny = cy as i32 + dy;
                    if nx < 0 || ny < 0 || nx >= g as i32 || ny >= g as i32 {
                        continue;
                    }
                    let (nx, ny) = (nx as usize, ny as usize);
                    if self.dist[ny * g + nx] == Some(d - 1) {
                        cx = nx;
                        cy = ny;
                        d -= 1;
                        path.push((cx, cy));
                        stepped = true;
                        break 'scan;
                    }
                }
            }
            if !stepped {
                // A reached cell always has a predecessor at d-1; treat a
                // violation as unreachability rather than panicking.
                return Err(unreachable);
            }
        }
        path.reverse();
        Ok(path)
    }

    /// Number of cells reachable from the source (including it).
    pub fn reachable_cells(&self) -> usize {
        self.dist.iter().filter(|d| d.is_some()).count()
    }

    /// The maximum hop distance over reachable cells (the map's eccentricity
    /// from this source).
    pub fn eccentricity(&self) -> u32 {
        self.dist.iter().flatten().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::config::EnvConfig;
    use crate::geometry::Rect;

    #[test]
    fn open_map_reaches_everything() {
        let cfg = EnvConfig::tiny(); // no obstacles
        let f = DistanceField::from(&cfg, &Point::new(0.5, 0.5));
        assert_eq!(f.reachable_cells(), cfg.grid * cfg.grid);
        // Opposite corner of an 8x8 grid is 7 diagonal hops away.
        assert_eq!(f.distance_to(&cfg, &Point::new(7.5, 7.5)), Some(7));
        assert_eq!(f.eccentricity(), 7);
    }

    #[test]
    fn wall_forces_detour() {
        let mut cfg = EnvConfig::tiny();
        // Vertical wall splitting the map, gap only at the top row.
        cfg.obstacles = vec![Rect::new(3.6, 0.0, 4.4, 7.0)];
        let f = DistanceField::from(&cfg, &Point::new(1.5, 1.5));
        let direct = f.distance_to(&cfg, &Point::new(6.5, 1.5)).expect("reachable via gap");
        // Straight line would be 5 hops; the detour over the top is longer.
        assert!(direct > 5, "wall ignored: distance {direct}");
    }

    #[test]
    fn sealed_region_is_unreachable() {
        let mut cfg = EnvConfig::tiny();
        // Fully sealed box around the corner.
        cfg.obstacles = vec![Rect::new(5.0, 0.0, 5.8, 3.0), Rect::new(5.0, 2.2, 8.0, 3.0)];
        let f = DistanceField::from(&cfg, &Point::new(1.0, 6.0));
        assert_eq!(f.distance_to(&cfg, &Point::new(7.5, 0.5)), None);
        assert!(f.reachable_cells() < cfg.grid * cfg.grid);
    }

    #[test]
    fn paper_corner_room_is_reachable_only_via_the_passage() {
        // The Fig. 2(b) map: the bottom-right room must be reachable (the
        // curiosity experiments depend on it) but only by a detour through
        // the x in [14, 15] gap — much longer than the straight line.
        let cfg = EnvConfig::paper_default();
        let outside = Point::new(9.0, 2.5); // west of the room's west wall
        let inside = Point::new(13.5, 2.5); // inside the room
        let f = DistanceField::from(&cfg, &outside);
        let hops = f.distance_to(&cfg, &inside).expect("corner room must be reachable");
        // Straight-line distance is ~5 cells; the passage detour (up, over
        // the wall, through the gap, back down) is far longer.
        assert!(hops >= 8, "expected a passage detour, got {hops} hops");
        // And the whole map is connected: every unblocked cell (by the same
        // positive-area overlap rule the flood fill uses) is reachable.
        let free_cells = (0..cfg.grid * cfg.grid)
            .filter(|i| {
                let (cx, cy) = (i % cfg.grid, i / cfg.grid);
                let (x0, y0) = (cx as f32, cy as f32);
                !cfg.obstacles.iter().any(|r| r.overlaps_box(x0, y0, x0 + 1.0, y0 + 1.0))
            })
            .count();
        assert_eq!(f.reachable_cells(), free_cells, "paper map has an unreachable pocket");
    }

    #[test]
    fn source_inside_obstacle_reaches_nothing() {
        let mut cfg = EnvConfig::tiny();
        cfg.obstacles = vec![Rect::new(3.0, 3.0, 5.0, 5.0)];
        let f = DistanceField::from(&cfg, &Point::new(4.0, 4.0));
        assert_eq!(f.reachable_cells(), 0);
        assert_eq!(f.eccentricity(), 0);
    }
}
