//! State-tensor encoding (Section V, "State").
//!
//! The observation is a 3-channel `grid × grid` matrix:
//!
//! 1. **worker channel** — each worker's normalized energy budget placed at
//!    its current cell, offset by an identity mark: the cell holds
//!    `(w + 1 + energy_ratio/2) / W`, so every worker occupies a disjoint
//!    value band that encodes both who it is and how much battery it has
//!    (the paper's single shared channel is ambiguous for factored heads);
//! 2. **map channel** — remaining PoI data (normalized per cell), charging
//!    stations (+2) and obstacles (−1);
//! 3. **access-time channel** — per-PoI access counters `h_t(p)` normalized
//!    by the horizon, making coverage fairness visible to the policy.

use crate::config::EnvConfig;
use crate::env::CrowdsensingEnv;
use crate::geometry::Point;

/// Number of observation channels.
pub const STATE_CHANNELS: usize = 3;
/// Marker value for a charging station in the map channel.
pub const STATION_MARK: f32 = 2.0;
/// Marker value for an obstacle cell in the map channel.
pub const OBSTACLE_MARK: f32 = -1.0;

/// Maps a continuous position to its grid cell `(col, row)`.
pub fn cell_of(cfg: &EnvConfig, p: &Point) -> (usize, usize) {
    let cx = ((p.x / cfg.cell_x()) as usize).min(cfg.grid - 1);
    let cy = ((p.y / cfg.cell_y()) as usize).min(cfg.grid - 1);
    (cx, cy)
}

/// Flat index into one channel.
fn idx(cfg: &EnvConfig, cx: usize, cy: usize) -> usize {
    cy * cfg.grid + cx
}

/// Encodes the current environment state into a flat `[3 * grid * grid]`
/// buffer laid out channel-major (`[C, H, W]` row-major), ready to be viewed
/// as a conv input `[1, 3, grid, grid]`.
pub fn encode(env: &CrowdsensingEnv) -> Vec<f32> {
    let mut out = Vec::with_capacity(state_len(env.config()));
    encode_into(env, &mut out);
    out
}

/// Appends the encoded state to `out` (same layout as [`encode`]), reusing
/// the buffer's existing capacity — the batched rollout path stacks `E`
/// observations into one arena-leased vector without `E` temporaries.
pub fn encode_into(env: &CrowdsensingEnv, out: &mut Vec<f32>) {
    let cfg = env.config();
    let g2 = cfg.grid * cfg.grid;
    let base = out.len();
    out.resize(base + STATE_CHANNELS * g2, 0.0);
    let (ch_workers, rest) = out[base..].split_at_mut(g2);
    let (ch_map, ch_access) = rest.split_at_mut(g2);

    let w_total = env.workers().len() as f32;
    for (wi, w) in env.workers().iter().enumerate() {
        let (cx, cy) = cell_of(cfg, &w.pos);
        ch_workers[idx(cfg, cx, cy)] += if cfg.paper_worker_channel {
            // Ablation: the paper's literal encoding (energy only).
            w.energy_ratio()
        } else {
            (wi as f32 + 1.0 + 0.5 * w.energy_ratio()) / w_total
        };
    }

    // Obstacles first, then stations and PoIs layered on top. A cell is
    // marked when any obstacle overlaps it with positive area — thin walls
    // (the corner-room's 0.5-wide walls) must be visible to the policy even
    // though they never contain a cell center.
    for cy in 0..cfg.grid {
        for cx in 0..cfg.grid {
            let (x0, y0) = (cx as f32 * cfg.cell_x(), cy as f32 * cfg.cell_y());
            let (x1, y1) = (x0 + cfg.cell_x(), y0 + cfg.cell_y());
            if cfg.obstacles.iter().any(|r| r.overlaps_box(x0, y0, x1, y1)) {
                ch_map[idx(cfg, cx, cy)] = OBSTACLE_MARK;
            }
        }
    }
    for p in env.pois() {
        let (cx, cy) = cell_of(cfg, &p.pos);
        ch_map[idx(cfg, cx, cy)] += p.data;
    }
    for s in env.stations() {
        let (cx, cy) = cell_of(cfg, &s.pos);
        ch_map[idx(cfg, cx, cy)] += STATION_MARK;
    }

    let horizon = cfg.horizon as f32;
    for p in env.pois() {
        let (cx, cy) = cell_of(cfg, &p.pos);
        ch_access[idx(cfg, cx, cy)] += p.access_time as f32 / horizon;
    }
}

/// The `[C, H, W]` shape of one encoded observation.
pub fn state_shape(cfg: &EnvConfig) -> [usize; 3] {
    [STATE_CHANNELS, cfg.grid, cfg.grid]
}

/// Number of scalars in one encoded observation.
pub fn state_len(cfg: &EnvConfig) -> usize {
    STATE_CHANNELS * cfg.grid * cfg.grid
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::action::{Move, WorkerAction};
    use crate::config::EnvConfig;

    #[test]
    fn shape_and_length_agree() {
        let cfg = EnvConfig::paper_default();
        let env = CrowdsensingEnv::new(cfg.clone());
        let s = encode(&env);
        assert_eq!(s.len(), state_len(&cfg));
        assert_eq!(state_shape(&cfg), [3, 16, 16]);
    }

    #[test]
    fn worker_channel_holds_energy_ratio() {
        let cfg = EnvConfig::tiny();
        let mut env = CrowdsensingEnv::new(cfg.clone());
        env.set_worker_energy(0, cfg.initial_energy / 2.0);
        let s = encode(&env);
        let (cx, cy) = cell_of(&cfg, &env.workers()[0].pos);
        let v = s[cy * cfg.grid + cx];
        // Single worker at half battery: (0 + 1 + 0.5*0.5) / 1 = 1.25.
        assert!((v - 1.25).abs() < 1e-6);
        // Exactly one nonzero cell in channel 1 for a single worker.
        let nonzero = s[..cfg.grid * cfg.grid].iter().filter(|&&x| x != 0.0).count();
        assert_eq!(nonzero, 1);
    }

    #[test]
    fn map_channel_marks_obstacles_stations_pois() {
        let cfg = EnvConfig::paper_default();
        let env = CrowdsensingEnv::new(cfg.clone());
        let s = encode(&env);
        let g2 = cfg.grid * cfg.grid;
        let map = &s[g2..2 * g2];
        assert!(map.contains(&OBSTACLE_MARK), "no obstacle cells marked");
        assert!(map.iter().any(|&v| v >= STATION_MARK), "no station cells marked");
        assert!(map.iter().any(|&v| v > 0.0 && v < STATION_MARK), "no PoI data visible");
    }

    #[test]
    fn access_channel_tracks_collection() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 1;
        let mut env = CrowdsensingEnv::new(cfg.clone());
        env.teleport_worker(0, env.pois()[0].pos);
        let before = encode(&env);
        env.step(&[WorkerAction::go(Move::Stay)]);
        let after = encode(&env);
        let g2 = cfg.grid * cfg.grid;
        let sum_before: f32 = before[2 * g2..].iter().sum();
        let sum_after: f32 = after[2 * g2..].iter().sum();
        assert_eq!(sum_before, 0.0);
        assert!((sum_after - 1.0 / cfg.horizon as f32).abs() < 1e-6);
    }

    #[test]
    fn paper_worker_channel_ablation_drops_identity() {
        let mut cfg = EnvConfig::tiny();
        cfg.paper_worker_channel = true;
        let mut env = CrowdsensingEnv::new(cfg.clone());
        env.set_worker_energy(0, cfg.initial_energy / 2.0);
        let s = encode(&env);
        let (cx, cy) = cell_of(&cfg, &env.workers()[0].pos);
        assert!((s[cy * cfg.grid + cx] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn positions_on_far_edge_stay_in_grid() {
        let cfg = EnvConfig::tiny();
        let (cx, cy) = cell_of(&cfg, &Point::new(cfg.size_x, cfg.size_y));
        assert_eq!((cx, cy), (cfg.grid - 1, cfg.grid - 1));
    }

    #[test]
    fn encoding_changes_as_data_depletes() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 5;
        let mut env = CrowdsensingEnv::new(cfg);
        env.teleport_worker(0, env.pois()[0].pos);
        let s0 = encode(&env);
        for _ in 0..6 {
            env.step(&[WorkerAction::go(Move::Stay)]);
        }
        let s1 = encode(&env);
        assert_ne!(s0, s1);
    }
}
