//! Trajectory recording and spatial heat maps.
//!
//! Used for Fig. 2(c) (worker trajectories) and Fig. 9 (curiosity-value heat
//! maps over visited locations).

use crate::config::EnvConfig;
use crate::geometry::Point;
use crate::state::cell_of;
use serde::{Deserialize, Serialize};

/// A per-worker sequence of visited positions.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trajectory {
    /// `points[w]` is worker `w`'s position at each recorded slot.
    pub points: Vec<Vec<Point>>,
}

impl Trajectory {
    /// An empty recorder for `num_workers` workers.
    pub fn new(num_workers: usize) -> Self {
        Self { points: vec![Vec::new(); num_workers] }
    }

    /// Appends the current position of every worker.
    pub fn record(&mut self, positions: impl Iterator<Item = Point>) {
        for (track, p) in self.points.iter_mut().zip(positions) {
            track.push(p);
        }
    }

    /// Number of recorded slots (0 if no workers).
    pub fn len(&self) -> usize {
        self.points.first().map_or(0, Vec::len)
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total path length of one worker's track.
    pub fn path_length(&self, worker: usize) -> f32 {
        self.points[worker].windows(2).map(|w| w[0].dist(&w[1])).sum()
    }

    /// Renders one worker's track as an ASCII grid (for terminal reports).
    pub fn ascii(&self, cfg: &EnvConfig, worker: usize) -> String {
        let mut grid = vec![vec!['.'; cfg.grid]; cfg.grid];
        for r in &cfg.obstacles {
            for cy in 0..cfg.grid {
                for cx in 0..cfg.grid {
                    let c = Point::new(
                        (cx as f32 + 0.5) * cfg.cell_x(),
                        (cy as f32 + 0.5) * cfg.cell_y(),
                    );
                    if r.contains(&c) {
                        grid[cy][cx] = '#';
                    }
                }
            }
        }
        for p in &self.points[worker] {
            let (cx, cy) = cell_of(cfg, p);
            grid[cy][cx] = '*';
        }
        if let (Some(first), Some(last)) = (self.points[worker].first(), self.points[worker].last())
        {
            let (cx, cy) = cell_of(cfg, first);
            grid[cy][cx] = 'S';
            let (cx, cy) = cell_of(cfg, last);
            grid[cy][cx] = 'E';
        }
        // Row 0 is the south edge; print north-up.
        grid.iter().rev().map(|row| row.iter().collect::<String>()).collect::<Vec<_>>().join("\n")
    }
}

/// A scalar field over the grid accumulating values at visited cells — the
/// curiosity heat map of Fig. 9.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HeatMap {
    grid: usize,
    values: Vec<f32>,
    counts: Vec<u32>,
}

impl HeatMap {
    /// An empty map over `grid × grid` cells.
    pub fn new(grid: usize) -> Self {
        Self { grid, values: vec![0.0; grid * grid], counts: vec![0; grid * grid] }
    }

    /// Grid resolution per axis.
    pub fn grid(&self) -> usize {
        self.grid
    }

    /// Adds a sample at the cell containing `p`.
    pub fn deposit(&mut self, cfg: &EnvConfig, p: &Point, value: f32) {
        let (cx, cy) = cell_of(cfg, p);
        let i = cy * self.grid + cx;
        self.values[i] += value;
        self.counts[i] += 1;
    }

    /// Mean sample value at a cell, or 0 if unvisited.
    pub fn mean_at(&self, cx: usize, cy: usize) -> f32 {
        let i = cy * self.grid + cx;
        if self.counts[i] == 0 {
            0.0
        } else {
            self.values[i] / self.counts[i] as f32
        }
    }

    /// Total deposited value over all cells.
    pub fn total(&self) -> f32 {
        self.values.iter().sum()
    }

    /// Number of distinct visited cells ("brightness area" of Fig. 9).
    pub fn visited_cells(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Maximum mean cell value.
    pub fn peak(&self) -> f32 {
        (0..self.grid * self.grid)
            .map(|i| self.mean_at(i % self.grid, i / self.grid))
            .fold(0.0f32, f32::max)
    }

    /// ASCII rendering with intensity ramp ` .:-=+*#%@` (north-up).
    pub fn ascii(&self) -> String {
        const RAMP: &[u8] = b" .:-=+*#%@";
        let peak = self.peak().max(1e-9);
        let mut rows = Vec::with_capacity(self.grid);
        for cy in (0..self.grid).rev() {
            let row: String = (0..self.grid)
                .map(|cx| {
                    let v = self.mean_at(cx, cy) / peak;
                    let k = ((v * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
                    RAMP[k] as char
                })
                .collect();
            rows.push(row);
        }
        rows.join("\n")
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::config::EnvConfig;

    #[test]
    fn trajectory_records_per_worker() {
        let mut t = Trajectory::new(2);
        t.record([Point::new(0.0, 0.0), Point::new(1.0, 1.0)].into_iter());
        t.record([Point::new(3.0, 4.0), Point::new(1.0, 1.0)].into_iter());
        assert_eq!(t.len(), 2);
        assert_eq!(t.path_length(0), 5.0);
        assert_eq!(t.path_length(1), 0.0);
    }

    #[test]
    fn ascii_marks_start_end_and_obstacles() {
        let cfg = EnvConfig::paper_default();
        let mut t = Trajectory::new(1);
        t.record([Point::new(0.5, 0.5)].into_iter());
        t.record([Point::new(1.5, 0.5)].into_iter());
        t.record([Point::new(2.5, 0.5)].into_iter());
        let art = t.ascii(&cfg, 0);
        assert!(art.contains('S'));
        assert!(art.contains('E'));
        assert!(art.contains('#'));
        assert_eq!(art.lines().count(), cfg.grid);
    }

    #[test]
    fn heatmap_means_and_coverage() {
        let cfg = EnvConfig::tiny();
        let mut h = HeatMap::new(cfg.grid);
        h.deposit(&cfg, &Point::new(0.5, 0.5), 2.0);
        h.deposit(&cfg, &Point::new(0.5, 0.5), 4.0);
        h.deposit(&cfg, &Point::new(5.5, 5.5), 1.0);
        assert_eq!(h.mean_at(0, 0), 3.0);
        assert_eq!(h.visited_cells(), 2);
        assert_eq!(h.total(), 7.0);
        assert_eq!(h.peak(), 3.0);
    }

    #[test]
    fn heatmap_ascii_shape() {
        let cfg = EnvConfig::tiny();
        let mut h = HeatMap::new(cfg.grid);
        h.deposit(&cfg, &Point::new(0.5, 0.5), 1.0);
        let art = h.ascii();
        assert_eq!(art.lines().count(), cfg.grid);
        assert!(art.lines().all(|l| l.chars().count() == cfg.grid));
        // Peak cell renders as the brightest glyph.
        assert!(art.contains('@'));
    }

    #[test]
    fn empty_heatmap_is_blank() {
        let h = HeatMap::new(4);
        assert_eq!(h.visited_cells(), 0);
        assert!(h.ascii().chars().all(|c| c == ' ' || c == '\n'));
    }
}
