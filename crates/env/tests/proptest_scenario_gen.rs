//! Property suite for the procedural scenario families (seeded-case loops,
//! PR-1 convention): the seeding contract (same seed ⇒ bitwise-identical
//! scenario), and self-validation under seed mutation (every seed ⇒ a valid
//! scenario).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vc_env::prelude::*;
use vc_env::scenario_gen::{generate, validate};

const CASES: usize = 24;

#[test]
fn same_seed_is_bitwise_identical_across_families() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    for case in 0..CASES {
        let seed: u64 = rng.gen();
        for family in ScenarioFamily::ALL {
            let a = generate(family, seed).unwrap_or_else(|e| panic!("{family:?}/{seed}: {e}"));
            let b = generate(family, seed).unwrap();
            assert_eq!(a, b, "case {case}: {family:?} seed {seed} not deterministic");
        }
    }
}

#[test]
fn mutated_seed_always_yields_a_valid_scenario() {
    let mut rng = StdRng::seed_from_u64(0xD00D);
    for case in 0..CASES {
        // Adversarial seed shapes: random, bit-flipped, near-zero, all-ones.
        let base: u64 = rng.gen();
        let seeds =
            [base, base ^ (1u64 << rng.gen_range(0..64)), case as u64, u64::MAX - case as u64];
        for seed in seeds {
            for family in ScenarioFamily::ALL {
                let scn =
                    generate(family, seed).unwrap_or_else(|e| panic!("{family:?}/{seed}: {e}"));
                // `generate` validated internally; re-assert the public
                // contract and the instantiation path.
                validate(&scn).unwrap_or_else(|e| panic!("{family:?}/{seed}: {e}"));
                let env = scn.try_env().unwrap_or_else(|e| panic!("{family:?}/{seed}: {e}"));
                assert_eq!(env.workers().len(), scn.config.num_workers);
                assert!(env.initial_total_data() > 0.0, "{family:?}/{seed}: no data on the map");
            }
        }
    }
}

#[test]
fn distinct_seeds_redraw_entities() {
    let mut rng = StdRng::seed_from_u64(0xFEED);
    for _ in 0..CASES {
        let a: u64 = rng.gen();
        let b: u64 = rng.gen();
        if a == b {
            continue;
        }
        for family in ScenarioFamily::ALL {
            let sa = generate(family, a).unwrap();
            let sb = generate(family, b).unwrap();
            assert_ne!(
                (sa.workers, sa.pois),
                (sb.workers, sb.pois),
                "{family:?}: seeds {a} and {b} produced identical entities"
            );
        }
    }
}

#[test]
fn generated_envs_reset_to_their_template() {
    // The generated entities must become the reset template — an episode
    // followed by reset restores the exact spawn state (capacity classes
    // included), which the recording round-trip and golden traces rely on.
    let mut rng = StdRng::seed_from_u64(0xAB1E);
    for family in ScenarioFamily::ALL {
        let scn = generate(family, 31).unwrap();
        let mut env = scn.env();
        while !env.done() {
            let n = env.workers().len();
            let mut actions = Vec::with_capacity(n);
            for wi in 0..n {
                let mask = env.valid_moves(wi);
                let valid: Vec<usize> = (0..NUM_MOVES).filter(|&i| mask[i]).collect();
                actions
                    .push(WorkerAction::go(Move::from_index(valid[rng.gen_range(0..valid.len())])));
            }
            env.step(&actions);
        }
        env.reset();
        assert_eq!(env.workers(), &scn.workers[..], "{family:?}: reset lost the worker template");
        assert_eq!(env.pois(), &scn.pois[..], "{family:?}: reset lost the PoI template");
        assert_eq!(env.time(), 0);
    }
}

#[test]
fn episodes_respect_physics_on_every_family() {
    // A quick physics audit straight from the generator (the full
    // scheduler × family sweep lives in tests/schedulers_differential.rs).
    let mut rng = StdRng::seed_from_u64(0xF00D);
    for family in ScenarioFamily::ALL {
        let scn = generate(family, 13).unwrap();
        let mut env = scn.env();
        while !env.done() {
            let n = env.workers().len();
            let actions: Vec<WorkerAction> = (0..n)
                .map(|wi| {
                    if env.can_charge(wi) && rng.gen_bool(0.3) {
                        WorkerAction::charge()
                    } else {
                        WorkerAction::go(Move::from_index(rng.gen_range(0..NUM_MOVES)))
                    }
                })
                .collect();
            env.step(&actions);
            for (wi, w) in env.workers().iter().enumerate() {
                assert!(w.energy >= 0.0, "{family:?}: worker {wi} energy negative");
                assert!(w.energy <= w.capacity, "{family:?}: worker {wi} over capacity");
                assert!(
                    !scn.config.obstacles.iter().any(|r| r.contains(&w.pos)),
                    "{family:?}: worker {wi} inside an obstacle"
                );
            }
        }
    }
}
