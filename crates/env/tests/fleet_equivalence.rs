//! Differential property suite for the struct-of-arrays stepping engine:
//! `CrowdsensingEnv::step` (columnar `step_fleet` fast path) must be
//! **bitwise** identical to `step_reference` (the original AoS per-entity
//! loop, preserved as the baseline) — same outcomes, same worker columns,
//! same PoI drain — across every scenario family, degenerate fleet shapes,
//! and every kernel-pool thread count.
//!
//! `f32` equality on non-NaN values is bit equality, so `assert_eq!` over
//! the `PartialEq` entity structs is exactly the "SoA ≡ AoS bitwise" claim.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vc_env::prelude::*;
use vc_env::scenario_gen::generate;
use vc_nn::ops::gemm::set_kernel_threads;

/// Mixed action stream: mostly movement (all 9 moves), some charge requests
/// so station competition is exercised.
fn random_actions(n: usize, rng: &mut StdRng) -> Vec<WorkerAction> {
    (0..n)
        .map(|_| {
            if rng.gen::<f32>() < 0.2 {
                WorkerAction::charge()
            } else {
                WorkerAction::go(Move::from_index(rng.gen_range(0..NUM_MOVES)))
            }
        })
        .collect()
}

/// Steps `soa` on the columnar path and `reference` on the AoS path with
/// identical actions, asserting full bitwise state agreement after every
/// slot.
fn assert_paths_identical(
    soa: &mut CrowdsensingEnv,
    reference: &mut CrowdsensingEnv,
    steps: usize,
    rng: &mut StdRng,
    label: &str,
) {
    for k in 0..steps {
        if soa.done() {
            break;
        }
        let actions = random_actions(soa.workers().len(), rng);
        let ra = soa.step(&actions);
        let rb = reference.step_reference(&actions);
        assert_eq!(ra.outcomes, rb.outcomes, "{label}: outcomes diverged at step {k}");
        assert_eq!(ra.t, rb.t, "{label}: time diverged at step {k}");
        assert_eq!(ra.done, rb.done, "{label}: done flag diverged at step {k}");
        assert_eq!(soa.workers(), reference.workers(), "{label}: workers diverged at step {k}");
        assert_eq!(soa.pois(), reference.pois(), "{label}: PoIs diverged at step {k}");
    }
    let (ma, mb) = (soa.metrics(), reference.metrics());
    assert_eq!(ma.data_collection_ratio, mb.data_collection_ratio, "{label}: κ diverged");
    assert_eq!(ma.energy_efficiency, mb.energy_efficiency, "{label}: ρ diverged");
}

#[test]
fn all_five_families_step_bitwise_identically() {
    for family in ScenarioFamily::ALL {
        for seed in [11u64, 407u64] {
            let scn = generate(family, seed).unwrap_or_else(|e| panic!("{family:?}/{seed}: {e}"));
            let mut soa = scn.try_env().unwrap_or_else(|e| panic!("{family:?}/{seed}: {e}"));
            let mut reference = soa.clone();
            let mut rng = StdRng::seed_from_u64(seed ^ 0xF1EE7);
            let label = format!("{family:?}/{seed}");
            assert_paths_identical(&mut soa, &mut reference, 50, &mut rng, &label);
        }
    }
}

#[test]
fn degenerate_fleet_with_zero_alive_workers() {
    let mut soa = CrowdsensingEnv::new(EnvConfig::paper_default());
    for wi in 0..soa.workers().len() {
        soa.set_worker_energy(wi, 0.0);
    }
    let mut reference = soa.clone();
    let mut rng = StdRng::seed_from_u64(99);
    assert_paths_identical(&mut soa, &mut reference, 20, &mut rng, "all-exhausted");
    assert!(soa.workers().iter().all(|w| w.exhausted()), "fleet should stay dead");
}

#[test]
fn degenerate_fleet_stacked_on_one_cell() {
    let mut cfg = EnvConfig::paper_default();
    cfg.num_workers = 6;
    let mut soa = CrowdsensingEnv::new(cfg);
    // Pile every worker onto the first station: maximal PoI/station
    // contention, where index-order resolution matters most.
    let spot = soa.stations()[0].pos;
    for wi in 0..soa.workers().len() {
        soa.teleport_worker(wi, spot);
    }
    let mut reference = soa.clone();
    let mut rng = StdRng::seed_from_u64(123);
    assert_paths_identical(&mut soa, &mut reference, 30, &mut rng, "stacked");
}

#[test]
fn degenerate_fleet_with_more_workers_than_pois() {
    let mut cfg = EnvConfig::tiny();
    cfg.num_workers = 8;
    cfg.num_pois = 3;
    cfg.seed = 5;
    let mut soa = CrowdsensingEnv::new(cfg);
    let mut reference = soa.clone();
    let mut rng = StdRng::seed_from_u64(321);
    assert_paths_identical(&mut soa, &mut reference, 30, &mut rng, "workers>pois");
}

#[test]
fn pooled_phase_a_matches_sequential_at_every_thread_count() {
    // A fleet above FLEET_PAR_MIN_WORKERS so thread counts > 1 actually
    // engage the pooled phase-A dispatch.
    let mut cfg = EnvConfig::paper_default();
    cfg.size_x = 64.0;
    cfg.size_y = 64.0;
    cfg.grid = 16;
    cfg.num_workers = FLEET_PAR_MIN_WORKERS + 100;
    cfg.num_pois = 800;
    cfg.num_stations = 16;
    cfg.obstacles.clear();
    cfg.seed = 77;
    for threads in [1usize, 2, 4] {
        set_kernel_threads(threads);
        let mut soa = CrowdsensingEnv::new(cfg.clone());
        let mut reference = soa.clone();
        let mut rng = StdRng::seed_from_u64(777);
        let label = format!("threads={threads}");
        assert_paths_identical(&mut soa, &mut reference, 4, &mut rng, &label);
    }
    set_kernel_threads(1);
}
