//! Property suite for `pathfind` and `geometry` (seeded-case loops, PR-1
//! convention): shortest paths never enter obstacles, their length respects
//! the discrete lower bound, and unreachable targets surface as typed errors
//! instead of panics.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vc_env::pathfind::DistanceField;
use vc_env::prelude::*;

const CASES: usize = 48;

/// Random small map: 8×8, up to three random obstacle rectangles (not
/// necessarily cell-aligned — partial cell overlap must block the cell).
fn random_cfg(rng: &mut StdRng) -> EnvConfig {
    let mut cfg = EnvConfig::tiny();
    let n_obs = rng.gen_range(0..4);
    cfg.obstacles = (0..n_obs)
        .map(|_| {
            let x0 = rng.gen::<f32>() * 6.0;
            let y0 = rng.gen::<f32>() * 6.0;
            let w = 0.5 + rng.gen::<f32>() * 2.0;
            let h = 0.5 + rng.gen::<f32>() * 2.0;
            Rect::new(x0, y0, (x0 + w).min(8.0), (y0 + h).min(8.0))
        })
        .collect();
    cfg
}

/// The flood fill's blocking rule, recomputed independently.
fn blocked(cfg: &EnvConfig, cx: usize, cy: usize) -> bool {
    let (x0, y0) = (cx as f32 * cfg.cell_x(), cy as f32 * cfg.cell_y());
    cfg.obstacles.iter().any(|r| r.overlaps_box(x0, y0, x0 + cfg.cell_x(), y0 + cfg.cell_y()))
}

fn cell_center(cfg: &EnvConfig, cx: usize, cy: usize) -> Point {
    Point::new((cx as f32 + 0.5) * cfg.cell_x(), (cy as f32 + 0.5) * cfg.cell_y())
}

#[test]
fn shortest_paths_respect_obstacles_and_lower_bound() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    let mut reachable_cases = 0;
    for case in 0..CASES {
        let cfg = random_cfg(&mut rng);
        let (sx, sy) = (rng.gen_range(0..cfg.grid), rng.gen_range(0..cfg.grid));
        let (tx, ty) = (rng.gen_range(0..cfg.grid), rng.gen_range(0..cfg.grid));
        let source = cell_center(&cfg, sx, sy);
        let target = cell_center(&cfg, tx, ty);
        let field = DistanceField::from(&cfg, &source);
        match field.path_to(&cfg, &target) {
            Ok(path) => {
                reachable_cases += 1;
                assert_eq!(path[0], (sx, sy), "case {case}: path must start at the source cell");
                assert_eq!(
                    *path.last().unwrap(),
                    (tx, ty),
                    "case {case}: path must end at the target cell"
                );
                // Exactly as long as the BFS distance says.
                let hops = path.len() as u32 - 1;
                assert_eq!(
                    Some(hops),
                    field.distance_to(&cfg, &target),
                    "case {case}: path length disagrees with the distance field"
                );
                // Discrete lower bound for 8-connected motion: hops can never
                // beat the Chebyshev distance (which also implies
                // hops >= manhattan/2, the diagonal-move Manhattan bound).
                let cheb = (sx.abs_diff(tx)).max(sy.abs_diff(ty)) as u32;
                let manhattan = (sx.abs_diff(tx) + sy.abs_diff(ty)) as u32;
                assert!(hops >= cheb, "case {case}: {hops} hops beats Chebyshev {cheb}");
                assert!(
                    2 * hops >= manhattan,
                    "case {case}: {hops} hops beats the Manhattan bound {manhattan}"
                );
                // Never enters a blocked cell; every step is 8-adjacent.
                for (k, &(cx, cy)) in path.iter().enumerate() {
                    assert!(
                        !blocked(&cfg, cx, cy),
                        "case {case}: path step {k} enters blocked cell ({cx}, {cy})"
                    );
                    if k > 0 {
                        let (px, py) = path[k - 1];
                        assert!(
                            px.abs_diff(cx) <= 1 && py.abs_diff(cy) <= 1 && (px, py) != (cx, cy),
                            "case {case}: step {k} teleports ({px},{py}) -> ({cx},{cy})"
                        );
                    }
                }
            }
            Err(EnvError::Unreachable { from, to }) => {
                // Typed error, correct endpoints, consistent with the field.
                assert_eq!(from, (sx, sy), "case {case}: error names the wrong source");
                assert_eq!(to, (tx, ty), "case {case}: error names the wrong target");
                assert_eq!(
                    field.distance_to(&cfg, &target),
                    None,
                    "case {case}: Unreachable contradicts the distance field"
                );
            }
            Err(other) => panic!("case {case}: unexpected error {other}"),
        }
    }
    assert!(
        reachable_cases >= CASES / 2,
        "only {reachable_cases} reachable cases — maps too dense"
    );
}

#[test]
fn sealed_target_returns_typed_error_not_panic() {
    let mut cfg = EnvConfig::tiny();
    // Seal the bottom-right corner with an L of walls.
    cfg.obstacles = vec![Rect::new(5.0, 0.0, 5.8, 3.0), Rect::new(5.0, 2.2, 8.0, 3.0)];
    let field = DistanceField::from(&cfg, &Point::new(1.0, 6.0));
    let err = field.path_to(&cfg, &Point::new(7.5, 0.5)).unwrap_err();
    assert!(matches!(err, EnvError::Unreachable { .. }), "wanted Unreachable, got {err}");
    assert!(err.to_string().contains("unreachable"), "message unhelpful: {err}");
}

#[test]
fn source_inside_obstacle_is_unreachable_everywhere() {
    let mut cfg = EnvConfig::tiny();
    cfg.obstacles = vec![Rect::new(3.0, 3.0, 5.0, 5.0)];
    let field = DistanceField::from(&cfg, &Point::new(4.0, 4.0));
    // Even the source's own cell: the field never formed.
    assert!(field.path_to(&cfg, &Point::new(4.0, 4.0)).is_err());
    assert!(field.path_to(&cfg, &Point::new(1.0, 1.0)).is_err());
}

#[test]
fn path_to_source_is_the_single_source_cell() {
    let cfg = EnvConfig::tiny();
    let p = Point::new(3.5, 4.5);
    let field = DistanceField::from(&cfg, &p);
    assert_eq!(field.path_to(&cfg, &p).unwrap(), vec![field.source_cell()]);
}

// ---- geometry properties ---------------------------------------------------

#[test]
fn rect_corner_order_never_matters() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for case in 0..CASES {
        let (x0, y0) = (rng.gen::<f32>() * 8.0, rng.gen::<f32>() * 8.0);
        let (x1, y1) = (rng.gen::<f32>() * 8.0, rng.gen::<f32>() * 8.0);
        let a = Rect::new(x0, y0, x1, y1);
        let b = Rect::new(x1, y1, x0, y0);
        assert_eq!((a.x0, a.y0, a.x1, a.y1), (b.x0, b.y0, b.x1, b.y1), "case {case}");
        for _ in 0..8 {
            let p = Point::new(rng.gen::<f32>() * 8.0, rng.gen::<f32>() * 8.0);
            assert_eq!(a.contains(&p), b.contains(&p), "case {case}: contains disagrees");
        }
    }
}

#[test]
fn contains_implies_box_overlap_and_segment_hit() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for case in 0..CASES {
        let x0 = rng.gen::<f32>() * 6.0;
        let y0 = rng.gen::<f32>() * 6.0;
        let r = Rect::new(x0, y0, x0 + 0.5 + rng.gen::<f32>(), y0 + 0.5 + rng.gen::<f32>());
        // A point strictly inside…
        let p = Point::new(
            r.x0 + (r.x1 - r.x0) * (0.25 + 0.5 * rng.gen::<f32>()),
            r.y0 + (r.y1 - r.y0) * (0.25 + 0.5 * rng.gen::<f32>()),
        );
        assert!(r.contains(&p), "case {case}: interior point not contained");
        // …implies overlap with any box around it…
        assert!(
            r.overlaps_box(p.x - 0.1, p.y - 0.1, p.x + 0.1, p.y + 0.1),
            "case {case}: contains without box overlap"
        );
        // …and a degenerate-to-short segment through it intersects.
        let q = Point::new(p.x + 0.01, p.y + 0.01);
        assert!(r.intersects_segment(&p, &q), "case {case}: interior segment missed");
    }
}

#[test]
fn segment_intersection_is_symmetric_and_misses_far_segments() {
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    for case in 0..CASES {
        let x0 = 2.0 + rng.gen::<f32>() * 2.0;
        let y0 = 2.0 + rng.gen::<f32>() * 2.0;
        let r = Rect::new(x0, y0, x0 + 1.0, y0 + 1.0);
        let a = Point::new(rng.gen::<f32>() * 8.0, rng.gen::<f32>() * 8.0);
        let b = Point::new(rng.gen::<f32>() * 8.0, rng.gen::<f32>() * 8.0);
        assert_eq!(
            r.intersects_segment(&a, &b),
            r.intersects_segment(&b, &a),
            "case {case}: intersection not symmetric"
        );
        // A segment strictly left of the rect can never hit it.
        let far_a = Point::new(x0 - 1.5, a.y);
        let far_b = Point::new(x0 - 1.1, b.y);
        assert!(!r.intersects_segment(&far_a, &far_b), "case {case}: phantom intersection");
    }
}

#[test]
fn point_distance_is_a_metric() {
    let mut rng = StdRng::seed_from_u64(0xFACE);
    for case in 0..CASES {
        let p = Point::new(rng.gen::<f32>() * 8.0, rng.gen::<f32>() * 8.0);
        let q = Point::new(rng.gen::<f32>() * 8.0, rng.gen::<f32>() * 8.0);
        let s = Point::new(rng.gen::<f32>() * 8.0, rng.gen::<f32>() * 8.0);
        assert!((p.dist(&q) - q.dist(&p)).abs() < 1e-6, "case {case}: asymmetric");
        assert_eq!(p.dist(&p), 0.0, "case {case}: nonzero self-distance");
        assert!(
            p.dist(&s) <= p.dist(&q) + q.dist(&s) + 1e-5,
            "case {case}: triangle inequality violated"
        );
    }
}
