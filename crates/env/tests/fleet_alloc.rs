//! Pins the fleet-stepping guarantee of DESIGN.md §16: after a short
//! warmup, `CrowdsensingEnv::step_fleet` at 1000 workers performs **zero**
//! heap allocations per slot. Phase-A/outcome columns live in the
//! persistent arena-backed scratch, PoI candidates reuse one arena buffer,
//! and even the `step()` wrapper's `Vec<WorkerOutcome>` is recycled through
//! a drop shelf.
//!
//! Mirrors `crates/nn/tests/arena_alloc.rs`: a counting `GlobalAlloc`
//! wrapper, warmup steps to populate every buffer size class, then a hard
//! zero-delta assertion per steady-state step.

#![allow(unsafe_code)]
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use vc_env::prelude::*;
use vc_nn::ops::gemm::set_kernel_threads;

/// Counts every `alloc`/`realloc` hitting the global allocator.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const WORKERS: usize = 1000;

/// A mega-fleet scenario: 1000 workers sweeping a 64×64 map with 2000 PoIs.
fn mega_config() -> EnvConfig {
    let mut cfg = EnvConfig::paper_default();
    cfg.size_x = 64.0;
    cfg.size_y = 64.0;
    cfg.grid = 16;
    cfg.num_workers = WORKERS;
    cfg.num_pois = 2000;
    cfg.num_stations = 16;
    cfg.horizon = 1_000_000; // never finishes during the test
    cfg.obstacles.clear();
    cfg.poi_distribution = PoiDistribution::Uniform;
    cfg.seed = 4242;
    cfg
}

/// A deterministic mixed action pattern (all 9 moves + charge requests).
fn fixed_actions() -> Vec<WorkerAction> {
    (0..WORKERS)
        .map(|wi| {
            if wi % 10 == 9 {
                WorkerAction::charge()
            } else {
                WorkerAction::go(Move::from_index(wi % NUM_MOVES))
            }
        })
        .collect()
}

#[test]
fn steady_state_fleet_step_performs_zero_heap_allocations() {
    set_kernel_threads(1);
    let mut env = CrowdsensingEnv::new(mega_config());
    let actions = fixed_actions();

    // Warmup: lease the scratch columns, size the candidate buffer, and
    // populate the outcome-vector recycle shelf.
    for _ in 0..5 {
        let view = env.step_fleet(&actions);
        assert_eq!(view.collected.len(), WORKERS);
    }

    for step in 0..5 {
        let before = ALLOCS.load(Ordering::Relaxed);
        let view = env.step_fleet(&actions);
        let collected: f32 = view.collected.iter().sum();
        let delta = ALLOCS.load(Ordering::Relaxed) - before;
        assert!(collected.is_finite(), "step {step} produced non-finite collection");
        assert_eq!(
            delta, 0,
            "steady-state fleet step {step} hit the global allocator {delta} time(s); \
             some per-step buffer is bypassing the scratch/arena"
        );
    }

    // The `step()` wrapper must also be allocation-free once its recycled
    // outcome vector has warmed up.
    for _ in 0..3 {
        drop(env.step(&actions));
    }
    for step in 0..5 {
        let before = ALLOCS.load(Ordering::Relaxed);
        let result = env.step(&actions);
        assert_eq!(result.outcomes.len(), WORKERS);
        drop(result);
        let delta = ALLOCS.load(Ordering::Relaxed) - before;
        assert_eq!(
            delta, 0,
            "steady-state step() wrapper {step} hit the global allocator {delta} time(s)"
        );
    }
}
