//! Property-based tests for the crowdsensing simulator's physical and
//! metric invariants under arbitrary action sequences.

use proptest::prelude::*;
use vc_env::prelude::*;

/// Strategy: a small random environment config.
fn env_config() -> impl Strategy<Value = EnvConfig> {
    (1usize..4, 5usize..40, 0usize..3, 5usize..25, any::<u64>()).prop_map(
        |(workers, pois, stations, horizon, seed)| {
            let mut cfg = EnvConfig::tiny();
            cfg.num_workers = workers;
            cfg.num_pois = pois;
            cfg.num_stations = stations;
            cfg.horizon = horizon;
            cfg.seed = seed;
            cfg
        },
    )
}

/// Strategy: an action for one worker.
fn action() -> impl Strategy<Value = WorkerAction> {
    (0usize..NUM_MOVES, any::<bool>()).prop_map(|(mv, charge)| WorkerAction {
        movement: Move::from_index(mv),
        charge,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn physics_invariants_hold_under_arbitrary_actions(
        cfg in env_config(),
        seq in proptest::collection::vec(proptest::collection::vec(action(), 4), 30),
    ) {
        let mut env = CrowdsensingEnv::new(cfg.clone());
        let mut prev_data: f32 = env.pois().iter().map(|p| p.data).sum();
        for step_actions in seq {
            if env.done() {
                break;
            }
            let actions: Vec<WorkerAction> =
                (0..cfg.num_workers).map(|w| step_actions[w % step_actions.len()]).collect();
            let result = env.step(&actions);

            // Energy stays within [0, capacity].
            for w in env.workers() {
                prop_assert!(w.energy >= -1e-4, "negative energy {}", w.energy);
                prop_assert!(w.energy <= w.capacity + 1e-4, "overfull battery");
            }
            // Workers stay inside the space and outside obstacles.
            for w in env.workers() {
                prop_assert!(w.pos.x >= 0.0 && w.pos.x <= cfg.size_x);
                prop_assert!(w.pos.y >= 0.0 && w.pos.y <= cfg.size_y);
                prop_assert!(!cfg.obstacles.iter().any(|r| r.contains(&w.pos)));
            }
            // PoI data never grows.
            let data: f32 = env.pois().iter().map(|p| p.data).sum();
            prop_assert!(data <= prev_data + 1e-4, "data regrew {prev_data} -> {data}");
            prev_data = data;

            // Per-step outcomes are consistent.
            for out in &result.outcomes {
                prop_assert!(out.collected >= 0.0);
                prop_assert!(out.consumed >= 0.0);
                prop_assert!(out.charged >= 0.0);
                prop_assert!(out.traveled >= 0.0);
                prop_assert!(out.traveled <= cfg.max_step + 1e-5);
                if out.charging {
                    prop_assert!(out.collected == 0.0, "charging slot collected data");
                }
            }
        }
    }

    #[test]
    fn metrics_stay_bounded(cfg in env_config(), moves in proptest::collection::vec(0usize..NUM_MOVES, 25)) {
        let mut env = CrowdsensingEnv::new(cfg.clone());
        for &mv in &moves {
            if env.done() {
                break;
            }
            let actions = vec![WorkerAction::go(Move::from_index(mv)); cfg.num_workers];
            env.step(&actions);
            let m = env.metrics();
            prop_assert!((0.0..=1.0).contains(&m.data_collection_ratio));
            prop_assert!((0.0..=1.0).contains(&m.remaining_data_ratio));
            prop_assert!((0.0..=1.0).contains(&m.fairness_index));
            prop_assert!(m.energy_efficiency >= 0.0 && m.energy_efficiency.is_finite());
        }
    }

    #[test]
    fn collection_conservation(cfg in env_config(), moves in proptest::collection::vec(0usize..NUM_MOVES, 25)) {
        // Total collected by workers equals total removed from PoIs.
        let mut env = CrowdsensingEnv::new(cfg.clone());
        let initial: f32 = env.pois().iter().map(|p| p.data).sum();
        for &mv in &moves {
            if env.done() {
                break;
            }
            env.step(&vec![WorkerAction::go(Move::from_index(mv)); cfg.num_workers]);
        }
        let remaining: f32 = env.pois().iter().map(|p| p.data).sum();
        let collected: f32 = env.workers().iter().map(|w| w.total_collected).sum();
        prop_assert!(
            (initial - remaining - collected).abs() < 1e-2,
            "conservation violated: initial {initial}, remaining {remaining}, collected {collected}"
        );
    }

    #[test]
    fn rewards_are_finite(cfg in env_config(), mv in 0usize..NUM_MOVES) {
        let mut env = CrowdsensingEnv::new(cfg.clone());
        let r = env.step(&vec![WorkerAction::go(Move::from_index(mv)); cfg.num_workers]);
        let sparse = sparse_reward(&cfg, &r.outcomes);
        let dense = dense_reward(&cfg, &r.outcomes);
        prop_assert!(sparse.is_finite());
        prop_assert!(dense.is_finite());
    }

    #[test]
    fn jain_index_bounds(values in proptest::collection::vec(0.01f32..10.0, 1..20)) {
        let j = jain_index(values.iter().copied());
        let n = values.len() as f32;
        prop_assert!(j >= 1.0 / n - 1e-5, "jain {j} below 1/n");
        prop_assert!(j <= 1.0 + 1e-5, "jain {j} above 1");
    }

    #[test]
    fn state_encoding_has_fixed_shape(cfg in env_config(), mv in 0usize..NUM_MOVES) {
        let mut env = CrowdsensingEnv::new(cfg.clone());
        let expect = vc_env::state::state_len(&cfg);
        prop_assert_eq!(vc_env::state::encode(&env).len(), expect);
        env.step(&vec![WorkerAction::go(Move::from_index(mv)); cfg.num_workers]);
        let s = vc_env::state::encode(&env);
        prop_assert_eq!(s.len(), expect);
        prop_assert!(s.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn scenario_generation_is_pure(cfg in env_config()) {
        let a = CrowdsensingEnv::new(cfg.clone());
        let b = CrowdsensingEnv::new(cfg);
        prop_assert_eq!(a.pois(), b.pois());
        prop_assert_eq!(a.workers(), b.workers());
    }

    #[test]
    fn segment_intersection_is_symmetric(
        x0 in 0.0f32..8.0, y0 in 0.0f32..8.0,
        x1 in 0.0f32..8.0, y1 in 0.0f32..8.0,
        rx in 1.0f32..5.0, ry in 1.0f32..5.0,
    ) {
        let r = Rect::new(rx, ry, rx + 1.5, ry + 1.5);
        let a = Point::new(x0, y0);
        let b = Point::new(x1, y1);
        prop_assert_eq!(r.intersects_segment(&a, &b), r.intersects_segment(&b, &a));
    }
}
