//! Randomized property tests for the crowdsensing simulator's physical and
//! metric invariants under arbitrary action sequences.
//!
//! The original proptest harness is unavailable offline, so each property
//! runs over a fixed number of seeded random cases instead — same
//! assertions, deterministic inputs.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vc_env::prelude::*;

const CASES: usize = 48;

/// A small random environment config.
fn env_config(rng: &mut StdRng) -> EnvConfig {
    let mut cfg = EnvConfig::tiny();
    cfg.num_workers = rng.gen_range(1usize..4);
    cfg.num_pois = rng.gen_range(5usize..40);
    cfg.num_stations = rng.gen_range(0usize..3);
    cfg.horizon = rng.gen_range(5usize..25);
    cfg.seed = rng.gen::<u64>();
    cfg
}

/// A random action for one worker.
fn action(rng: &mut StdRng) -> WorkerAction {
    WorkerAction {
        movement: Move::from_index(rng.gen_range(0usize..NUM_MOVES)),
        charge: rng.gen::<bool>(),
    }
}

#[test]
fn physics_invariants_hold_under_arbitrary_actions() {
    let mut rng = StdRng::seed_from_u64(41);
    for _ in 0..CASES {
        let cfg = env_config(&mut rng);
        let seq: Vec<Vec<WorkerAction>> =
            (0..30).map(|_| (0..4).map(|_| action(&mut rng)).collect()).collect();
        let mut env = CrowdsensingEnv::new(cfg.clone());
        let mut prev_data: f32 = env.pois().iter().map(|p| p.data).sum();
        for step_actions in seq {
            if env.done() {
                break;
            }
            let actions: Vec<WorkerAction> =
                (0..cfg.num_workers).map(|w| step_actions[w % step_actions.len()]).collect();
            let result = env.step(&actions);

            // Energy stays within [0, capacity].
            for w in env.workers() {
                assert!(w.energy >= -1e-4, "negative energy {}", w.energy);
                assert!(w.energy <= w.capacity + 1e-4, "overfull battery");
            }
            // Workers stay inside the space and outside obstacles.
            for w in env.workers() {
                assert!(w.pos.x >= 0.0 && w.pos.x <= cfg.size_x);
                assert!(w.pos.y >= 0.0 && w.pos.y <= cfg.size_y);
                assert!(!cfg.obstacles.iter().any(|r| r.contains(&w.pos)));
            }
            // PoI data never grows.
            let data: f32 = env.pois().iter().map(|p| p.data).sum();
            assert!(data <= prev_data + 1e-4, "data regrew {prev_data} -> {data}");
            prev_data = data;

            // Per-step outcomes are consistent.
            for out in &result.outcomes {
                assert!(out.collected >= 0.0);
                assert!(out.consumed >= 0.0);
                assert!(out.charged >= 0.0);
                assert!(out.traveled >= 0.0);
                assert!(out.traveled <= cfg.max_step + 1e-5);
                if out.charging {
                    assert!(out.collected == 0.0, "charging slot collected data");
                }
            }
        }
    }
}

#[test]
fn metrics_stay_bounded() {
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..CASES {
        let cfg = env_config(&mut rng);
        let moves: Vec<usize> = (0..25).map(|_| rng.gen_range(0usize..NUM_MOVES)).collect();
        let mut env = CrowdsensingEnv::new(cfg.clone());
        for &mv in &moves {
            if env.done() {
                break;
            }
            let actions = vec![WorkerAction::go(Move::from_index(mv)); cfg.num_workers];
            env.step(&actions);
            let m = env.metrics();
            assert!((0.0..=1.0).contains(&m.data_collection_ratio));
            assert!((0.0..=1.0).contains(&m.remaining_data_ratio));
            assert!((0.0..=1.0).contains(&m.fairness_index));
            assert!(m.energy_efficiency >= 0.0 && m.energy_efficiency.is_finite());
        }
    }
}

#[test]
fn collection_conservation() {
    // Total collected by workers equals total removed from PoIs.
    let mut rng = StdRng::seed_from_u64(43);
    for _ in 0..CASES {
        let cfg = env_config(&mut rng);
        let moves: Vec<usize> = (0..25).map(|_| rng.gen_range(0usize..NUM_MOVES)).collect();
        let mut env = CrowdsensingEnv::new(cfg.clone());
        let initial: f32 = env.pois().iter().map(|p| p.data).sum();
        for &mv in &moves {
            if env.done() {
                break;
            }
            env.step(&vec![WorkerAction::go(Move::from_index(mv)); cfg.num_workers]);
        }
        let remaining: f32 = env.pois().iter().map(|p| p.data).sum();
        let collected: f32 = env.workers().iter().map(|w| w.total_collected).sum();
        assert!(
            (initial - remaining - collected).abs() < 1e-2,
            "conservation violated: initial {initial}, remaining {remaining}, collected {collected}"
        );
    }
}

#[test]
fn rewards_are_finite() {
    let mut rng = StdRng::seed_from_u64(44);
    for _ in 0..CASES {
        let cfg = env_config(&mut rng);
        let mv = rng.gen_range(0usize..NUM_MOVES);
        let mut env = CrowdsensingEnv::new(cfg.clone());
        let r = env.step(&vec![WorkerAction::go(Move::from_index(mv)); cfg.num_workers]);
        let sparse = sparse_reward(&cfg, &r.outcomes);
        let dense = dense_reward(&cfg, &r.outcomes);
        assert!(sparse.is_finite());
        assert!(dense.is_finite());
    }
}

#[test]
fn jain_index_bounds() {
    let mut rng = StdRng::seed_from_u64(45);
    for _ in 0..CASES {
        let n = rng.gen_range(1usize..20);
        let values: Vec<f32> = (0..n).map(|_| rng.gen_range(0.01f32..10.0)).collect();
        let j = jain_index(values.iter().copied());
        let n = values.len() as f32;
        assert!(j >= 1.0 / n - 1e-5, "jain {j} below 1/n");
        assert!(j <= 1.0 + 1e-5, "jain {j} above 1");
    }
}

#[test]
fn state_encoding_has_fixed_shape() {
    let mut rng = StdRng::seed_from_u64(46);
    for _ in 0..CASES {
        let cfg = env_config(&mut rng);
        let mv = rng.gen_range(0usize..NUM_MOVES);
        let mut env = CrowdsensingEnv::new(cfg.clone());
        let expect = vc_env::state::state_len(&cfg);
        assert_eq!(vc_env::state::encode(&env).len(), expect);
        env.step(&vec![WorkerAction::go(Move::from_index(mv)); cfg.num_workers]);
        let s = vc_env::state::encode(&env);
        assert_eq!(s.len(), expect);
        assert!(s.iter().all(|v| v.is_finite()));
    }
}

#[test]
fn scenario_generation_is_pure() {
    let mut rng = StdRng::seed_from_u64(47);
    for _ in 0..CASES {
        let cfg = env_config(&mut rng);
        let a = CrowdsensingEnv::new(cfg.clone());
        let b = CrowdsensingEnv::new(cfg);
        assert_eq!(a.pois(), b.pois());
        assert_eq!(a.workers(), b.workers());
    }
}

#[test]
fn segment_intersection_is_symmetric() {
    let mut rng = StdRng::seed_from_u64(48);
    for _ in 0..CASES {
        let (x0, y0) = (rng.gen_range(0.0f32..8.0), rng.gen_range(0.0f32..8.0));
        let (x1, y1) = (rng.gen_range(0.0f32..8.0), rng.gen_range(0.0f32..8.0));
        let (rx, ry) = (rng.gen_range(1.0f32..5.0), rng.gen_range(1.0f32..5.0));
        let r = Rect::new(rx, ry, rx + 1.5, ry + 1.5);
        let a = Point::new(x0, y0);
        let b = Point::new(x1, y1);
        assert_eq!(r.intersects_segment(&a, &b), r.intersects_segment(&b, &a));
    }
}
