//! # vc-baselines — comparison schedulers for the DRL-CEWS evaluation
//!
//! The baselines and state-of-the-art comparators of Section VII-B:
//!
//! * [`greedy::GreedyScheduler`] — one-step lookahead, no charging plan;
//! * [`dnc::DncScheduler`] — D&C (Lian et al., ICDE 2017): prediction-based
//!   two-step lookahead with station seeking;
//! * [`edics::Edics`] — the authors' earlier multi-agent DRL algorithm
//!   (one independent dense-reward PPO agent per worker);
//! * [`scheduler::RandomScheduler`] — the uniform-random floor;
//! * [`hungarian::HungarianScheduler`] — the per-slot optimal-assignment
//!   oracle (Kuhn–Munkres over the worker × PoI distance matrix), the cost
//!   optimum every other per-slot assignment is audited against;
//! * [`sweep::SweepScheduler`] — a deterministic O(W) serpentine patrol,
//!   the action source for fleet-scale benchmarks where lookahead
//!   schedulers would dominate the measured step cost.
//!
//! The remaining comparator, **DPPO** (Heess et al.), shares its entire
//! machinery with DRL-CEWS minus curiosity and sparse rewards; it is
//! provided by the `drl-cews` crate as a trainer preset
//! (`TrainerConfig::dppo`) so the two share one audited implementation.

pub mod dnc;
pub mod edics;
pub mod greedy;
pub mod hungarian;
pub mod scheduler;
pub mod sweep;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::dnc::DncScheduler;
    pub use crate::edics::{Edics, EdicsConfig};
    pub use crate::greedy::GreedyScheduler;
    pub use crate::hungarian::{solve, Assignment, HungarianError, HungarianScheduler};
    pub use crate::scheduler::{run_episode, RandomScheduler, Scheduler};
    pub use crate::sweep::SweepScheduler;
}
