//! The D&C (divide-and-concur) baseline of Lian et al., ICDE 2017
//! (Section VII-B).
//!
//! A prediction-based two-step lookahead: for every reachable position at
//! `t+1`, D&C also derives the positions reachable at `t+2` and scores the
//! move by the *expected collected data over both steps*, accounting for the
//! data the first step would already drain. Unlike Greedy it also plans
//! charging: a low-battery worker charges in range or routes toward the
//! nearest station, which is why added stations help D&C in Fig. 6(d).

use crate::scheduler::Scheduler;
use rand::rngs::StdRng;
use vc_env::prelude::*;

/// Battery fraction below which D&C switches to charging behavior.
const CHARGE_THRESHOLD: f32 = 0.35;

/// Two-step-lookahead scheduler with station seeking.
#[derive(Debug, Default)]
pub struct DncScheduler {
    /// Seek stations by obstacle-aware hop distance instead of straight-line
    /// distance. Off by default (the recorded experiments use the
    /// straight-line variant); turning it on stops low-battery workers from
    /// steering into walls that stand between them and the nearest station.
    pub pathfind_stations: bool,
}

impl DncScheduler {
    /// The obstacle-aware variant.
    pub fn with_pathfinding() -> Self {
        Self { pathfind_stations: true }
    }

    /// Expected collection at `pos` after the PoIs in `drained` (in range of
    /// an earlier position) have been collected once.
    fn collection_after(env: &CrowdsensingEnv, pos: &Point, drained: &Point) -> f32 {
        let cfg = env.config();
        let g = cfg.sensing_range;
        env.pois()
            .iter()
            .filter(|p| p.pos.dist(pos) <= g)
            .map(|p| {
                let step = cfg.collect_rate * p.initial_data;
                let mut remaining = p.data;
                if p.pos.dist(drained) <= g {
                    remaining = (remaining - step.min(remaining)).max(0.0);
                }
                step.min(remaining)
            })
            .sum()
    }

    /// Two-step lookahead value of moving to `first`.
    fn two_step_value(env: &CrowdsensingEnv, wi: usize, first: &Point) -> f32 {
        let q1 = env.potential_collection(first);
        let cfg = env.config();
        let mut best_q2 = 0.0f32;
        for mv in Move::ALL {
            let (dx, dy) = mv.displacement(cfg.max_step);
            let second = first.offset(dx, dy);
            if !env.path_clear(first, &second) {
                continue;
            }
            let q2 = Self::collection_after(env, &second, first);
            if q2 > best_q2 {
                best_q2 = q2;
            }
        }
        let _ = wi;
        q1 + best_q2
    }

    /// The valid move minimizing distance to the nearest charging station —
    /// straight-line by default, obstacle-aware hops with
    /// [`Self::with_pathfinding`].
    fn move_toward_station(&self, env: &CrowdsensingEnv, wi: usize) -> Move {
        let fields: Option<Vec<vc_env::pathfind::DistanceField>> =
            self.pathfind_stations.then(|| {
                env.stations()
                    .iter()
                    .map(|s| vc_env::pathfind::DistanceField::from(env.config(), &s.pos))
                    .collect()
            });
        let mut best = Move::Stay;
        let mut best_d = f32::INFINITY;
        for mv in Move::ALL {
            let Some(target) = env.peek_move(wi, mv) else { continue };
            let d = match &fields {
                Some(fields) => fields
                    .iter()
                    .filter_map(|f| f.distance_to(env.config(), &target))
                    .map(|h| h as f32)
                    .fold(f32::INFINITY, f32::min),
                None => {
                    env.stations().iter().map(|s| s.pos.dist(&target)).fold(f32::INFINITY, f32::min)
                }
            };
            if d < best_d {
                best_d = d;
                best = mv;
            }
        }
        best
    }
}

impl Scheduler for DncScheduler {
    fn decide(&mut self, env: &CrowdsensingEnv, _rng: &mut StdRng) -> Vec<WorkerAction> {
        (0..env.workers().len())
            .map(|wi| {
                let w = &env.workers()[wi];
                if w.energy_ratio() < CHARGE_THRESHOLD {
                    if env.can_charge(wi) {
                        return WorkerAction::charge();
                    }
                    if !env.stations().is_empty() {
                        return WorkerAction::go(self.move_toward_station(env, wi));
                    }
                }
                let mut best = Move::Stay;
                let mut best_v = f32::NEG_INFINITY;
                for mv in Move::ALL {
                    let Some(target) = env.peek_move(wi, mv) else { continue };
                    let v = Self::two_step_value(env, wi, &target);
                    if v > best_v {
                        best_v = v;
                        best = mv;
                    }
                }
                WorkerAction::go(best)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "d&c"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::greedy::GreedyScheduler;
    use crate::scheduler::run_episode;
    use rand::SeedableRng;

    #[test]
    fn lookahead_prefers_richer_two_step_path() {
        // One PoI two steps east; nothing one step away. Greedy sees zero
        // everywhere and stays; D&C's lookahead walks east. Placed
        // explicitly so the scenario does not depend on the PRNG draw.
        let mut env = vc_env::builder::MapBuilder::new(8.0, 8.0, 16)
            .worker(2.0, 4.0)
            .poi(4.0, 4.0, 10.0)
            .build();
        let poi = env.pois()[0].pos;
        let start = env.workers()[0].pos;
        env.teleport_worker(0, start);
        let mut rng = StdRng::seed_from_u64(0);

        let g = GreedyScheduler.decide(&env, &mut rng);
        assert_eq!(g[0].movement, Move::Stay, "greedy should see nothing in one step");

        let d = DncScheduler::default().decide(&env, &mut rng);
        let target = env.peek_move(0, d[0].movement).unwrap();
        assert!(target.dist(&poi) < start.dist(&poi), "D&C should approach the PoI");
    }

    #[test]
    fn seeks_station_when_low() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 0;
        let mut env = CrowdsensingEnv::new(cfg);
        let st = env.stations()[0].pos;
        let far =
            Point::new(if st.x < 4.0 { 7.5 } else { 0.5 }, if st.y < 4.0 { 7.5 } else { 0.5 });
        env.teleport_worker(0, far);
        env.set_worker_energy(0, 8.0);
        let mut rng = StdRng::seed_from_u64(0);
        let acts = DncScheduler::default().decide(&env, &mut rng);
        let target = env.peek_move(0, acts[0].movement).unwrap();
        assert!(target.dist(&st) < far.dist(&st), "should move toward the station");
    }

    #[test]
    fn charges_in_range_when_low() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 0;
        let mut env = CrowdsensingEnv::new(cfg);
        env.teleport_worker(0, env.stations()[0].pos);
        env.set_worker_energy(0, 8.0);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(DncScheduler::default().decide(&env, &mut rng)[0].charge);
    }

    #[test]
    fn pathfinding_variant_routes_around_walls() {
        // Station behind a wall: straight-line seeking presses into the
        // wall; the pathfinding variant detours.
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 0;
        cfg.num_stations = 1;
        cfg.obstacles = vec![Rect::new(3.8, 0.0, 4.2, 6.0)];
        let mut env = CrowdsensingEnv::new(cfg);
        // Force a known geometry: worker west of the wall, station east.
        env.teleport_worker(0, Point::new(2.5, 2.5));
        let station_pos = Point::new(6.0, 2.5);
        // Rebuild the env with the station where we need it via MapBuilder.
        let mut env = vc_env::builder::MapBuilder::new(8.0, 8.0, 8)
            .obstacle(3.8, 0.0, 4.2, 6.0)
            .station(station_pos.x, station_pos.y)
            .worker(2.5, 2.5)
            .configure(|c| c.num_pois = 0)
            .build();
        env.set_worker_energy(0, 8.0);
        let mut rng = StdRng::seed_from_u64(0);

        let naive = DncScheduler::default().decide(&env, &mut rng)[0];
        let smart = DncScheduler::with_pathfinding().decide(&env, &mut rng)[0];
        let naive_target = env.peek_move(0, naive.movement).unwrap();
        let smart_target = env.peek_move(0, smart.movement).unwrap();
        // The naive variant heads straight at the station (east-ish); the
        // pathfinding variant must make progress in hop distance.
        let field = vc_env::pathfind::DistanceField::from(env.config(), &station_pos);
        let here = field.distance_to(env.config(), &env.workers()[0].pos).unwrap();
        let smart_hops = field.distance_to(env.config(), &smart_target).unwrap();
        assert!(smart_hops < here, "pathfinding variant made no hop progress");
        // (The naive move may or may not make hop progress; assert only that
        // both produced legal moves.)
        let _ = naive_target;
    }

    #[test]
    fn outperforms_greedy_over_long_horizon() {
        // With a long horizon the energy budget binds; D&C's charging and
        // lookahead must collect at least as much as Greedy (the paper's
        // consistent ordering).
        let run = |sched: &mut dyn Scheduler| {
            let mut cfg = EnvConfig::paper_default();
            cfg.horizon = 150;
            let mut env = CrowdsensingEnv::new(cfg);
            let mut rng = StdRng::seed_from_u64(5);
            run_episode(sched, &mut env, &mut rng).data_collection_ratio
        };
        let dnc = run(&mut DncScheduler::default());
        let greedy = run(&mut GreedyScheduler);
        assert!(dnc >= greedy, "D&C {dnc} must not lose to Greedy {greedy}");
    }
}
