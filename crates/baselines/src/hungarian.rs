//! Hungarian (Kuhn–Munkres) optimal assignment: the per-slot oracle.
//!
//! [`solve`] computes a minimum-cost assignment of rows (workers) to columns
//! (targets) of a dense cost matrix in O(n²·m) — the shortest-augmenting-path
//! formulation with row/column potentials, the same optimum SciPy's
//! `linear_sum_assignment` returns. Rectangular matrices are supported on
//! both sides: with more columns than rows every row is assigned; with more
//! rows than columns the optimum assigns `cols` rows and leaves the rest
//! unmatched (`None`).
//!
//! [`HungarianScheduler`] wraps the solver behind the [`Scheduler`] trait:
//! each slot it builds the worker × PoI distance matrix, solves for the
//! optimal pairing, and steps every worker toward its assigned PoI. It is
//! fully deterministic (the rng parameter is unused), which makes it the
//! reference point of the differential audits: on the same matrix no
//! assignment — greedy, random or learned — can cost less.

use crate::scheduler::Scheduler;
use rand::rngs::StdRng;
use std::fmt;
use vc_env::prelude::*;

/// Typed failures of the assignment oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HungarianError {
    /// A cost cell is NaN or infinite; potentials would be poisoned.
    NonFiniteCost {
        /// Row of the offending cell.
        row: usize,
        /// Column of the offending cell.
        col: usize,
    },
    /// `costs.len()` disagrees with `rows * cols`.
    ShapeMismatch {
        /// Declared row count.
        rows: usize,
        /// Declared column count.
        cols: usize,
        /// Actual slice length.
        len: usize,
    },
}

impl fmt::Display for HungarianError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HungarianError::NonFiniteCost { row, col } => {
                write!(f, "cost matrix cell ({row}, {col}) is not finite")
            }
            HungarianError::ShapeMismatch { rows, cols, len } => {
                write!(f, "cost slice has {len} cells, expected {rows}x{cols}")
            }
        }
    }
}

impl std::error::Error for HungarianError {}

/// A minimum-cost assignment.
#[derive(Clone, Debug, PartialEq)]
pub struct Assignment {
    /// For each row, the column it is matched to (`None` when `rows > cols`
    /// left this row out of the optimum).
    pub assigned: Vec<Option<usize>>,
    /// Sum of the matched cells' costs.
    pub total_cost: f32,
}

/// Solves the minimum-cost assignment over a row-major `rows × cols` matrix.
///
/// # Errors
///
/// [`HungarianError::ShapeMismatch`] when the slice length is wrong, and
/// [`HungarianError::NonFiniteCost`] when any cell is NaN or infinite —
/// typed rejection instead of a silently wrong matching.
pub fn solve(costs: &[f32], rows: usize, cols: usize) -> Result<Assignment, HungarianError> {
    if costs.len() != rows * cols {
        return Err(HungarianError::ShapeMismatch { rows, cols, len: costs.len() });
    }
    if let Some(i) = costs.iter().position(|c| !c.is_finite()) {
        // cols > 0 here: with cols == 0 the slice is empty.
        return Err(HungarianError::NonFiniteCost { row: i / cols, col: i % cols });
    }
    if rows == 0 || cols == 0 {
        return Ok(Assignment { assigned: vec![None; rows], total_cost: 0.0 });
    }
    if rows > cols {
        // Solve the transpose (square-or-wide), then flip the matching back:
        // the optimum uses every column, i.e. assigns `cols` of the rows.
        let mut t = vec![0.0f32; rows * cols];
        for r in 0..rows {
            for c in 0..cols {
                t[c * rows + r] = costs[r * cols + c];
            }
        }
        let flipped = solve(&t, cols, rows)?;
        let mut assigned = vec![None; rows];
        for (c, r) in flipped.assigned.iter().enumerate() {
            if let Some(r) = r {
                assigned[*r] = Some(c);
            }
        }
        return Ok(Assignment { assigned, total_cost: flipped.total_cost });
    }

    // Shortest augmenting paths with potentials, 1-indexed; `p[j]` is the
    // row matched to column j (0 = free). f64 accumulators keep the
    // potential updates stable for near-degenerate f32 inputs.
    let (n, m) = (rows, cols);
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1];
    let mut way = vec![0usize; m + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = f64::from(costs[(i0 - 1) * m + (j - 1)]) - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assigned = vec![None; n];
    let mut total = 0.0f64;
    for j in 1..=m {
        if p[j] != 0 {
            assigned[p[j] - 1] = Some(j - 1);
            total += f64::from(costs[(p[j] - 1) * m + (j - 1)]);
        }
    }
    Ok(Assignment { assigned, total_cost: total as f32 })
}

/// A PoI must hold at least this much data to be an assignment target.
const MIN_TARGET_DATA: f32 = 1e-3;

/// Battery fraction below which an in-range worker tops up (matches the
/// Greedy baseline's opportunistic charging so the comparison isolates the
/// assignment quality).
const CHARGE_THRESHOLD: f32 = 0.35;

/// Optimal-assignment scheduler: per slot, Hungarian-match workers to the
/// nearest-by-optimum PoIs and step toward the match.
#[derive(Debug, Default)]
pub struct HungarianScheduler;

impl HungarianScheduler {
    /// Builds this slot's cost matrix: row-major worker × target Euclidean
    /// distances, over PoIs still holding data. Returns the matrix and the
    /// target PoI indices (matrix columns).
    pub fn cost_matrix(env: &CrowdsensingEnv) -> (Vec<f32>, Vec<usize>) {
        let targets: Vec<usize> = env
            .pois()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.data > MIN_TARGET_DATA)
            .map(|(i, _)| i)
            .collect();
        let mut costs = Vec::with_capacity(env.workers().len() * targets.len());
        for w in env.workers() {
            for &pi in &targets {
                costs.push(w.pos.dist(&env.pois()[pi].pos));
            }
        }
        (costs, targets)
    }
}

impl Scheduler for HungarianScheduler {
    fn decide(&mut self, env: &CrowdsensingEnv, _rng: &mut StdRng) -> Vec<WorkerAction> {
        let (costs, targets) = Self::cost_matrix(env);
        let w = env.workers().len();
        // Distances are finite by construction; an empty target set simply
        // leaves everyone unassigned.
        let assignment = solve(&costs, w, targets.len()).ok();
        (0..w)
            .map(|wi| {
                let worker = &env.workers()[wi];
                if worker.energy_ratio() < CHARGE_THRESHOLD && env.can_charge(wi) {
                    return WorkerAction::charge();
                }
                let goal = assignment
                    .as_ref()
                    .and_then(|a| a.assigned[wi])
                    .map(|ti| env.pois()[targets[ti]].pos);
                let Some(goal) = goal else {
                    return WorkerAction::go(Move::Stay);
                };
                // Step toward the assigned PoI among valid moves; ties keep
                // the earlier move in enum order (deterministic).
                let mut best = Move::Stay;
                let mut best_d = worker.pos.dist(&goal);
                for mv in Move::ALL {
                    if let Some(next) = env.peek_move(wi, mv) {
                        let d = next.dist(&goal);
                        if d + 1e-6 < best_d {
                            best_d = d;
                            best = mv;
                        }
                    }
                }
                WorkerAction::go(best)
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "hungarian"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn two_by_two_picks_the_cross() {
        // [9 1; 1 9]: optimum is the anti-diagonal, cost 2.
        let a = solve(&[9.0, 1.0, 1.0, 9.0], 2, 2).unwrap();
        assert_eq!(a.assigned, vec![Some(1), Some(0)]);
        assert!((a.total_cost - 2.0).abs() < 1e-6);
    }

    #[test]
    fn wide_matrix_assigns_every_row() {
        let a = solve(&[5.0, 1.0, 3.0, 2.0, 4.0, 6.0], 2, 3).unwrap();
        assert!(a.assigned.iter().all(Option::is_some));
        assert!((a.total_cost - 3.0).abs() < 1e-6); // 1.0 + 2.0
    }

    #[test]
    fn tall_matrix_leaves_rows_unmatched() {
        // 3 workers, 1 PoI: exactly one match, the cheapest row.
        let a = solve(&[3.0, 1.0, 2.0], 3, 1).unwrap();
        assert_eq!(a.assigned, vec![None, Some(0), None]);
        assert!((a.total_cost - 1.0).abs() < 1e-6);
    }

    #[test]
    fn non_finite_costs_are_rejected_with_position() {
        let err = solve(&[1.0, f32::NAN, 2.0, 3.0], 2, 2).unwrap_err();
        assert_eq!(err, HungarianError::NonFiniteCost { row: 0, col: 1 });
        let err = solve(&[1.0, 2.0, f32::INFINITY], 1, 3).unwrap_err();
        assert_eq!(err, HungarianError::NonFiniteCost { row: 0, col: 2 });
    }

    #[test]
    fn shape_mismatch_is_rejected() {
        let err = solve(&[1.0, 2.0, 3.0], 2, 2).unwrap_err();
        assert_eq!(err, HungarianError::ShapeMismatch { rows: 2, cols: 2, len: 3 });
    }

    #[test]
    fn empty_matrices_are_trivially_solved() {
        assert_eq!(solve(&[], 0, 0).unwrap().total_cost, 0.0);
        let a = solve(&[], 3, 0).unwrap();
        assert_eq!(a.assigned, vec![None, None, None]);
    }

    #[test]
    fn scheduler_episode_is_deterministic() {
        let cfg = EnvConfig::tiny();
        let run = || {
            let mut env = CrowdsensingEnv::new(cfg.clone());
            let mut rng = StdRng::seed_from_u64(0);
            crate::scheduler::run_episode(&mut HungarianScheduler, &mut env, &mut rng)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn scheduler_walks_toward_its_assignment() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 1;
        let mut env = CrowdsensingEnv::new(cfg);
        let poi = env.pois()[0].pos;
        let wx = if poi.x >= 4.0 { poi.x - 3.0 } else { poi.x + 3.0 };
        env.teleport_worker(0, Point::new(wx, poi.y));
        let before = env.workers()[0].pos.dist(&poi);
        let mut rng = StdRng::seed_from_u64(0);
        let acts = HungarianScheduler.decide(&env, &mut rng);
        env.step(&acts);
        let after = env.workers()[0].pos.dist(&poi);
        assert!(after < before, "did not close in on the assigned PoI ({before} -> {after})");
    }
}
