//! The common interface of all worker-scheduling policies, plus a uniform
//! random reference scheduler.

use rand::rngs::StdRng;
use rand::Rng;
use vc_env::prelude::*;

/// A policy mapping the observable environment to one action per worker.
pub trait Scheduler {
    /// Decides this slot's joint action.
    fn decide(&mut self, env: &CrowdsensingEnv, rng: &mut StdRng) -> Vec<WorkerAction>;

    /// Identifier used in experiment reports.
    fn name(&self) -> &'static str;
}

/// Runs a scheduler for one full episode and returns the final metrics.
pub fn run_episode(
    scheduler: &mut dyn Scheduler,
    env: &mut CrowdsensingEnv,
    rng: &mut StdRng,
) -> Metrics {
    while !env.done() {
        let actions = scheduler.decide(env, rng);
        env.step(&actions);
    }
    env.metrics()
}

/// Uniform random valid actions — the exploration floor every learned or
/// engineered policy must beat.
#[derive(Debug, Default)]
pub struct RandomScheduler;

impl Scheduler for RandomScheduler {
    fn decide(&mut self, env: &CrowdsensingEnv, rng: &mut StdRng) -> Vec<WorkerAction> {
        (0..env.workers().len())
            .map(|wi| {
                if env.can_charge(wi) && rng.gen_bool(0.2) {
                    return WorkerAction::charge();
                }
                let mask = env.valid_moves(wi);
                let valid: Vec<usize> = (0..NUM_MOVES).filter(|&i| mask[i]).collect();
                let mv = valid[rng.gen_range(0..valid.len())];
                WorkerAction::go(Move::from_index(mv))
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn random_episode_runs_to_horizon() {
        let mut env = CrowdsensingEnv::new(EnvConfig::tiny());
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = RandomScheduler;
        let m = run_episode(&mut s, &mut env, &mut rng);
        assert!(env.done());
        assert!((0.0..=1.0).contains(&m.data_collection_ratio));
    }

    #[test]
    fn random_actions_are_always_valid_moves() {
        let env = CrowdsensingEnv::new(EnvConfig::paper_default());
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = RandomScheduler;
        for _ in 0..30 {
            let acts = s.decide(&env, &mut rng);
            for (wi, a) in acts.iter().enumerate() {
                if !a.charge {
                    assert!(env.valid_moves(wi)[a.movement.index()]);
                }
            }
        }
    }

    #[test]
    fn random_collects_something_on_dense_map() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 60; // dense enough that random walking finds data
        cfg.horizon = 60;
        let mut env = CrowdsensingEnv::new(cfg);
        let mut rng = StdRng::seed_from_u64(2);
        let m = run_episode(&mut RandomScheduler, &mut env, &mut rng);
        assert!(m.data_collection_ratio > 0.0);
    }
}
