//! A deterministic O(W) patrol scheduler for fleet-scale benchmarking.
//!
//! Every lookahead baseline ([`crate::greedy::GreedyScheduler`], D&C) costs
//! `O(W · moves · P)` per slot in `potential_collection` calls, which at
//! 1000 workers dwarfs the environment step being measured. The sweep
//! scheduler instead assigns each worker a fixed serpentine patrol derived
//! from its index — east on even phases, west on odd, with periodic
//! northward shifts and a charge request whenever the battery dips below a
//! quarter — touching only the worker's own columnar state. That makes it
//! the action source for `bench_kernels`' `env_step` fleet records and the
//! fleet smoke rollouts: deterministic, allocation-light, and cheap enough
//! that the step kernel dominates the measurement.

use crate::scheduler::Scheduler;
use rand::rngs::StdRng;
use vc_env::prelude::*;

/// Slots per horizontal leg of the serpentine before a northward shift.
const LEG_LEN: usize = 8;

/// Deterministic serpentine patrol over the map, O(1) per worker per slot.
#[derive(Clone, Debug, Default)]
pub struct SweepScheduler {
    /// Slot counter driving the patrol phase.
    t: usize,
}

impl SweepScheduler {
    /// A fresh sweep starting at phase 0.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Scheduler for SweepScheduler {
    fn decide(&mut self, env: &CrowdsensingEnv, _rng: &mut StdRng) -> Vec<WorkerAction> {
        let fleet = env.fleet();
        let xs = fleet.worker_xs();
        let energies = fleet.energies();
        let capacity = env.config().initial_energy;
        let phase = self.t / LEG_LEN;
        let shift = self.t % LEG_LEN == LEG_LEN - 1;
        self.t += 1;
        (0..fleet.num_workers())
            .map(|wi| {
                if energies[wi] < 0.25 * capacity {
                    return WorkerAction::charge();
                }
                if shift {
                    return WorkerAction::go(Move::North);
                }
                // Workers alternate initial sweep direction by index so a
                // stacked spawn fans out instead of marching in lockstep.
                let east = (phase + wi).is_multiple_of(2);
                // Flip early at the map edge: the env would reject the
                // move anyway, and a collision stall wastes the slot.
                let near_west = xs[wi] <= env.config().max_step;
                let near_east = xs[wi] >= env.config().size_x - env.config().max_step;
                match (east, near_east, near_west) {
                    (true, true, _) => WorkerAction::go(Move::West),
                    (true, false, _) => WorkerAction::go(Move::East),
                    (false, _, true) => WorkerAction::go(Move::East),
                    (false, _, false) => WorkerAction::go(Move::West),
                }
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "sweep"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::scheduler::run_episode;
    use rand::SeedableRng;

    #[test]
    fn sweep_episode_runs_to_horizon_and_collects() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 60;
        cfg.horizon = 60;
        let mut env = CrowdsensingEnv::new(cfg);
        let mut rng = StdRng::seed_from_u64(0);
        let m = run_episode(&mut SweepScheduler::new(), &mut env, &mut rng);
        assert!(env.done());
        assert!(m.data_collection_ratio > 0.0, "a dense map should yield data");
    }

    #[test]
    fn sweep_is_deterministic() {
        let cfg = EnvConfig::paper_default();
        let mut a = CrowdsensingEnv::new(cfg.clone());
        let mut b = CrowdsensingEnv::new(cfg);
        let mut rng_a = StdRng::seed_from_u64(1);
        let mut rng_b = StdRng::seed_from_u64(2); // RNG must be irrelevant
        let mut sa = SweepScheduler::new();
        let mut sb = SweepScheduler::new();
        for _ in 0..20 {
            assert_eq!(sa.decide(&a, &mut rng_a), sb.decide(&b, &mut rng_b));
            let acts = sa.decide(&a, &mut rng_a);
            sb.t = sa.t; // keep phases aligned after the extra call
            a.step(&acts);
            b.step(&acts);
        }
    }

    #[test]
    fn sweep_requests_charge_when_low() {
        let mut env = CrowdsensingEnv::new(EnvConfig::tiny());
        env.set_worker_energy(0, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        let acts = SweepScheduler::new().decide(&env, &mut rng);
        assert!(acts[0].charge, "low battery must trigger a charge request");
    }
}
