//! The Edics baseline (Section VII-B) — the authors' earlier multi-agent
//! DRL crowdsensing algorithm (Liu et al., JSAC 2019).
//!
//! W independent agents, one per worker: each holds its own actor–critic
//! over the shared spatial state, emits the decision for its own worker
//! only, and trains on its own *dense* per-worker reward (Eqn 20 terms).
//! There is no chief, no curiosity, and no cross-agent parameter sharing —
//! the multi-agent non-stationarity this induces is exactly why the paper's
//! centralized DRL-CEWS outperforms it.

use crate::scheduler::Scheduler;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_env::prelude::*;
use vc_env::reward::dense_reward_worker;
use vc_nn::optim::{Adam, Optimizer};
use vc_nn::prelude::*;
use vc_rl::prelude::*;

/// Edics hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct EdicsConfig {
    /// PPO hyperparameters for the Edics learner.
    pub ppo: PpoConfig,
    /// Seed for network init and sampling.
    pub seed: u64,
}

impl Default for EdicsConfig {
    fn default() -> Self {
        Self { ppo: PpoConfig::default(), seed: 99 }
    }
}

struct Agent {
    store: ParamStore,
    net: ActorCritic,
    opt: Adam,
    buffer: RolloutBuffer,
}

/// The multi-agent baseline trainer/policy.
pub struct Edics {
    cfg: EdicsConfig,
    agents: Vec<Agent>,
    rng: StdRng,
    episodes_trained: usize,
}

impl Edics {
    /// Builds one agent per worker for the given scenario.
    pub fn new(env_cfg: &EnvConfig, cfg: EdicsConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let agents = (0..env_cfg.num_workers)
            .map(|_| {
                let mut store = ParamStore::new();
                let net = ActorCritic::new(
                    &mut store,
                    NetConfig::for_scenario(env_cfg.grid, 1),
                    &mut rng,
                );
                Agent { store, net, opt: Adam::new(cfg.ppo.lr), buffer: RolloutBuffer::new() }
            })
            .collect();
        Self {
            cfg,
            agents,
            rng: StdRng::seed_from_u64(cfg.seed.wrapping_add(1)),
            episodes_trained: 0,
        }
    }

    /// Number of episodes trained so far.
    pub fn episodes_trained(&self) -> usize {
        self.episodes_trained
    }

    /// Samples (or argmaxes) every agent's action for the current state.
    /// Returns per-agent `(action, move, charge, logp, value)`.
    fn act(
        &mut self,
        env: &CrowdsensingEnv,
        state: &[f32],
        greedy: bool,
    ) -> Vec<(WorkerAction, usize, usize, f32, f32)> {
        use vc_rl::policy::{argmax, sample_categorical};
        let cfg = env.config();
        let shape = vc_env::state::state_shape(cfg);
        let mut out = Vec::with_capacity(self.agents.len());
        for agent in &self.agents {
            let mut g = Graph::new();
            let s = g.leaf(Tensor::from_vec(&[1, shape[0], shape[1], shape[2]], state.to_vec()));
            let o = agent.net.forward(&mut g, &agent.store, s);
            let mp = {
                let sm = g.softmax(o.move_logits);
                g.value(sm).data().to_vec()
            };
            let cp = {
                let sc = g.softmax(o.charge_logits);
                g.value(sc).data().to_vec()
            };
            let (mv, ch) = if greedy {
                (argmax(&mp), argmax(&cp))
            } else {
                (sample_categorical(&mp, &mut self.rng), sample_categorical(&cp, &mut self.rng))
            };
            let logp = mp[mv].max(1e-12).ln() + cp[ch].max(1e-12).ln();
            let value = g.value(o.value).item();
            out.push((
                WorkerAction { movement: Move::from_index(mv), charge: ch == 1 },
                mv,
                ch,
                logp,
                value,
            ));
        }
        out
    }

    /// Runs one training episode: every agent rolls out on the shared
    /// environment with its own dense reward, then updates its own network.
    pub fn train_episode(&mut self, env: &mut CrowdsensingEnv) -> Metrics {
        env.reset();
        for a in &mut self.agents {
            a.buffer.clear();
        }
        while !env.done() {
            let state = vc_env::state::encode(env);
            let decisions = self.act(env, &state, false);
            let actions: Vec<WorkerAction> = decisions.iter().map(|d| d.0).collect();
            let result = env.step(&actions);
            for (wi, agent) in self.agents.iter_mut().enumerate() {
                let (_, mv, ch, logp, value) = decisions[wi];
                agent.buffer.push(Transition {
                    state: state.clone(),
                    moves: vec![mv],
                    charges: vec![ch],
                    move_mask: vec![true; vc_rl::net::MOVES_PER_WORKER],
                    charge_mask: vec![true; vc_rl::net::CHARGE_CHOICES],
                    logp,
                    reward: dense_reward_worker(env.config(), &result.outcomes[wi]),
                    value,
                });
            }
        }
        // Per-agent PPO updates with their own bootstrap values.
        let final_state = vc_env::state::encode(env);
        let shape = vc_env::state::state_shape(env.config());
        let ppo = self.cfg.ppo;
        for agent in &mut self.agents {
            let v_last = {
                let mut g = Graph::new();
                let s = g.leaf(Tensor::from_vec(
                    &[1, shape[0], shape[1], shape[2]],
                    final_state.clone(),
                ));
                let o = agent.net.forward(&mut g, &agent.store, s);
                g.value(o.value).item()
            };
            finish_rollout(&mut agent.buffer, &ppo, v_last);
            for _ in 0..ppo.epochs {
                for batch in agent.buffer.minibatch_indices(ppo.minibatch, &mut self.rng) {
                    agent.store.zero_grads();
                    compute_ppo_grads(&agent.net, &mut agent.store, &agent.buffer, &batch, &ppo);
                    agent.store.clip_grad_norm(ppo.max_grad_norm);
                    agent.opt.step(&mut agent.store);
                }
            }
        }
        self.episodes_trained += 1;
        env.metrics()
    }
}

impl Scheduler for Edics {
    fn decide(&mut self, env: &CrowdsensingEnv, _rng: &mut StdRng) -> Vec<WorkerAction> {
        let state = vc_env::state::encode(env);
        self.act(env, &state, true).into_iter().map(|d| d.0).collect()
    }

    fn name(&self) -> &'static str {
        "edics"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn quick_cfg() -> EdicsConfig {
        EdicsConfig { ppo: PpoConfig { epochs: 1, minibatch: 32, ..PpoConfig::default() }, seed: 3 }
    }

    #[test]
    fn one_agent_per_worker() {
        let mut env_cfg = EnvConfig::tiny();
        env_cfg.num_workers = 3;
        let e = Edics::new(&env_cfg, quick_cfg());
        assert_eq!(e.agents.len(), 3);
        // Agents are independent: distinct parameter stores.
        assert!(e.agents[0].store.num_scalars() > 0);
    }

    #[test]
    fn train_episode_runs_and_counts() {
        let mut cfg = EnvConfig::tiny();
        cfg.horizon = 10;
        let mut env = CrowdsensingEnv::new(cfg.clone());
        let mut e = Edics::new(&cfg, quick_cfg());
        let m = e.train_episode(&mut env);
        assert_eq!(e.episodes_trained(), 1);
        assert!((0.0..=1.0).contains(&m.data_collection_ratio));
    }

    #[test]
    fn training_changes_parameters() {
        let mut cfg = EnvConfig::tiny();
        cfg.horizon = 10;
        let mut env = CrowdsensingEnv::new(cfg.clone());
        let mut e = Edics::new(&cfg, quick_cfg());
        let before = e.agents[0].store.flat_values();
        e.train_episode(&mut env);
        let after = e.agents[0].store.flat_values();
        assert_ne!(before, after, "agent parameters did not move");
    }

    #[test]
    fn scheduler_decide_is_deterministic() {
        let cfg = EnvConfig::tiny();
        let env = CrowdsensingEnv::new(cfg.clone());
        let mut e = Edics::new(&cfg, quick_cfg());
        let mut rng = StdRng::seed_from_u64(0);
        let a = e.decide(&env, &mut rng);
        let b = e.decide(&env, &mut rng);
        assert_eq!(a, b);
    }
}
