//! The Greedy baseline (Section VII-B).
//!
//! Per slot and per worker: enumerate the reachable positions at `t+1`,
//! compute the data each would collect, and move to the maximizer — a pure
//! one-step lookahead with no coordination and no route planning toward
//! charging stations. A worker only charges opportunistically when it is
//! already inside a station's range with a depleted battery, which is why
//! (as the paper observes) Greedy workers get trapped in drained regions
//! and additional stations barely help it.

use crate::scheduler::Scheduler;
use rand::rngs::StdRng;
use vc_env::prelude::*;

/// Battery fraction below which an in-range Greedy worker tops up.
const CHARGE_THRESHOLD: f32 = 0.35;

/// One-step-lookahead scheduler.
#[derive(Debug, Default)]
pub struct GreedyScheduler;

impl GreedyScheduler {
    /// Picks the valid move maximizing immediate collection for one worker.
    /// Ties among *positive* gains break uniformly at random; when nothing
    /// is within one step's sensing range the worker stays put — the
    /// "trapped in a drained region" behavior the paper reports for Greedy
    /// (Section VII-I).
    fn best_move(env: &CrowdsensingEnv, wi: usize, rng: &mut StdRng) -> Move {
        use rand::Rng;
        let mut best = vec![Move::Stay];
        let mut best_gain = 0.0f32;
        for mv in Move::ALL {
            let Some(target) = env.peek_move(wi, mv) else { continue };
            let gain = env.potential_collection(&target);
            if gain > best_gain + 1e-9 {
                best_gain = gain;
                best.clear();
                best.push(mv);
            } else if gain > 0.0 && (gain - best_gain).abs() <= 1e-9 {
                best.push(mv);
            }
        }
        best[rng.gen_range(0..best.len())]
    }
}

impl Scheduler for GreedyScheduler {
    fn decide(&mut self, env: &CrowdsensingEnv, rng: &mut StdRng) -> Vec<WorkerAction> {
        (0..env.workers().len())
            .map(|wi| {
                let w = &env.workers()[wi];
                if w.energy_ratio() < CHARGE_THRESHOLD && env.can_charge(wi) {
                    return WorkerAction::charge();
                }
                WorkerAction::go(Self::best_move(env, wi, rng))
            })
            .collect()
    }

    fn name(&self) -> &'static str {
        "greedy"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    use rand::SeedableRng;

    #[test]
    fn moves_toward_adjacent_data() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 1;
        let mut env = CrowdsensingEnv::new(cfg);
        // Put the worker one step west of the PoI.
        let poi = env.pois()[0].pos;
        env.teleport_worker(0, Point::new((poi.x - 1.0).max(0.0), poi.y));
        let mut rng = StdRng::seed_from_u64(0);
        let acts = GreedyScheduler.decide(&env, &mut rng);
        let target = env.peek_move(0, acts[0].movement).unwrap();
        assert!(
            target.dist(&poi) <= env.config().sensing_range + 1e-5,
            "greedy did not step into sensing range: {target:?} vs {poi:?}"
        );
    }

    #[test]
    fn freezes_when_no_data_anywhere_nearby() {
        // The paper's trapped behavior: with nothing in one-step reach,
        // greedy has no incentive to move and stays put.
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 0;
        let env = CrowdsensingEnv::new(cfg);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(GreedyScheduler.decide(&env, &mut rng)[0].movement, Move::Stay);
        }
    }

    #[test]
    fn charges_when_low_and_in_range() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 0;
        let mut env = CrowdsensingEnv::new(cfg);
        env.teleport_worker(0, env.stations()[0].pos);
        env.set_worker_energy(0, 5.0);
        let mut rng = StdRng::seed_from_u64(0);
        let acts = GreedyScheduler.decide(&env, &mut rng);
        assert!(acts[0].charge);
    }

    #[test]
    fn does_not_seek_stations_when_low_but_out_of_range() {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 0;
        let mut env = CrowdsensingEnv::new(cfg);
        // Far from the single station, low battery: Greedy has no station-
        // seeking behavior, so it just stays (no data anywhere).
        let st = env.stations()[0].pos;
        let far =
            Point::new(if st.x < 4.0 { 7.5 } else { 0.5 }, if st.y < 4.0 { 7.5 } else { 0.5 });
        env.teleport_worker(0, far);
        env.set_worker_energy(0, 5.0);
        let mut rng = StdRng::seed_from_u64(0);
        let acts = GreedyScheduler.decide(&env, &mut rng);
        assert!(!acts[0].charge, "greedy must not plan toward a distant station");
    }

    #[test]
    fn exploits_fast_then_traps() {
        // Greedy drains its local neighborhood quickly (strong early) but,
        // once nothing is within a step, freezes — so its collection stops
        // growing while a wanderer's would keep climbing.
        let mut cfg = EnvConfig::paper_default();
        cfg.horizon = 200;
        let mut env = CrowdsensingEnv::new(cfg);
        let mut rng = StdRng::seed_from_u64(3);
        let mut kappa_at_50 = 0.0;
        let mut steps = 0;
        while !env.done() {
            let acts = GreedyScheduler.decide(&env, &mut rng);
            env.step(&acts);
            steps += 1;
            if steps == 50 {
                kappa_at_50 = env.metrics().data_collection_ratio;
            }
        }
        let kappa_end = env.metrics().data_collection_ratio;
        assert!(kappa_at_50 > 0.0, "greedy collected nothing early");
        // Trapped: the last 150 slots add little.
        assert!(
            kappa_end < kappa_at_50 * 2.5,
            "greedy kept growing ({kappa_at_50} -> {kappa_end}); trap behavior lost"
        );
    }
}
