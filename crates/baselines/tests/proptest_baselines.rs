//! Randomized property tests for the engineered schedulers: decisions must
//! always be executable, and the decision rules must respect their stated
//! invariants on arbitrary scenarios.
//!
//! The original proptest harness is unavailable offline, so each property
//! runs over a fixed number of seeded random cases instead — same
//! assertions, deterministic inputs.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vc_baselines::prelude::*;
use vc_env::prelude::*;

const CASES: usize = 24;

fn env_config(rng: &mut StdRng) -> EnvConfig {
    let mut cfg = EnvConfig::tiny();
    cfg.num_workers = rng.gen_range(1usize..4);
    cfg.num_pois = rng.gen_range(0usize..30);
    cfg.num_stations = rng.gen_range(0usize..3);
    cfg.horizon = 20;
    cfg.seed = rng.gen::<u64>();
    cfg
}

/// Steps a scheduler through a whole episode, asserting executability:
/// a decided *move* must be valid per the environment mask (charging is
/// allowed to be speculative — the env treats an out-of-range charge as a
/// wasted slot, not an error).
fn assert_executable(scheduler: &mut dyn Scheduler, cfg: &EnvConfig, seed: u64) {
    let mut env = CrowdsensingEnv::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    while !env.done() {
        let actions = scheduler.decide(&env, &mut rng);
        assert_eq!(actions.len(), cfg.num_workers);
        for (wi, a) in actions.iter().enumerate() {
            if !a.charge {
                assert!(
                    env.valid_moves(wi)[a.movement.index()],
                    "{} chose an invalid move {:?} for worker {wi}",
                    scheduler.name(),
                    a.movement
                );
            }
        }
        env.step(&actions);
    }
}

#[test]
fn greedy_decisions_are_always_executable() {
    let mut rng = StdRng::seed_from_u64(21);
    for _ in 0..CASES {
        let cfg = env_config(&mut rng);
        let seed = rng.gen::<u64>();
        assert_executable(&mut GreedyScheduler, &cfg, seed);
    }
}

#[test]
fn dnc_decisions_are_always_executable() {
    let mut rng = StdRng::seed_from_u64(22);
    for _ in 0..CASES {
        let cfg = env_config(&mut rng);
        let seed = rng.gen::<u64>();
        assert_executable(&mut DncScheduler::default(), &cfg, seed);
    }
}

#[test]
fn random_decisions_are_always_executable() {
    let mut rng = StdRng::seed_from_u64(23);
    for _ in 0..CASES {
        let cfg = env_config(&mut rng);
        let seed = rng.gen::<u64>();
        assert_executable(&mut RandomScheduler, &cfg, seed);
    }
}

#[test]
fn greedy_never_moves_away_from_strictly_better_cells() {
    // If some reachable position yields strictly positive collection,
    // greedy must pick a positive-gain move (never a zero-gain one).
    let mut case_rng = StdRng::seed_from_u64(24);
    for _ in 0..CASES {
        let seed = case_rng.gen::<u64>();
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 12;
        cfg.seed = seed;
        let env = CrowdsensingEnv::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let actions = GreedyScheduler.decide(&env, &mut rng);
        for (wi, a) in actions.iter().enumerate() {
            if a.charge {
                continue;
            }
            let best_gain = Move::ALL
                .iter()
                .filter_map(|&m| env.peek_move(wi, m))
                .map(|p| env.potential_collection(&p))
                .fold(0.0f32, f32::max);
            if best_gain > 1e-6 {
                let chosen = env.peek_move(wi, a.movement).unwrap();
                assert!(
                    env.potential_collection(&chosen) > 1e-6,
                    "worker {wi}: best gain {best_gain} available but greedy chose a barren move"
                );
            }
        }
    }
}

#[test]
fn low_battery_dnc_approaches_stations() {
    let mut case_rng = StdRng::seed_from_u64(25);
    for _ in 0..CASES {
        let seed = case_rng.gen::<u64>();
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 0;
        cfg.num_stations = 1;
        cfg.seed = seed;
        let mut env = CrowdsensingEnv::new(cfg);
        env.set_worker_energy(0, 5.0);
        let before = env.workers()[0].pos.dist(&env.stations()[0].pos);
        let mut rng = StdRng::seed_from_u64(seed);
        let actions = DncScheduler::default().decide(&env, &mut rng);
        if actions[0].charge {
            // Already in range — fine.
            assert!(env.can_charge(0));
        } else {
            let target = env.peek_move(0, actions[0].movement).unwrap();
            let after = target.dist(&env.stations()[0].pos);
            assert!(after <= before + 1e-5, "moved away from the only station");
        }
    }
}
