//! Property-based tests for the engineered schedulers: decisions must always
//! be executable, and the decision rules must respect their stated
//! invariants on arbitrary scenarios.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use vc_baselines::prelude::*;
use vc_env::prelude::*;

fn env_config() -> impl Strategy<Value = EnvConfig> {
    (1usize..4, 0usize..30, 0usize..3, any::<u64>()).prop_map(|(w, p, st, seed)| {
        let mut cfg = EnvConfig::tiny();
        cfg.num_workers = w;
        cfg.num_pois = p;
        cfg.num_stations = st;
        cfg.horizon = 20;
        cfg.seed = seed;
        cfg
    })
}

/// Steps a scheduler through a whole episode, asserting executability:
/// a decided *move* must be valid per the environment mask (charging is
/// allowed to be speculative — the env treats an out-of-range charge as a
/// wasted slot, not an error).
fn assert_executable(scheduler: &mut dyn Scheduler, cfg: &EnvConfig, seed: u64) {
    let mut env = CrowdsensingEnv::new(cfg.clone());
    let mut rng = StdRng::seed_from_u64(seed);
    while !env.done() {
        let actions = scheduler.decide(&env, &mut rng);
        assert_eq!(actions.len(), cfg.num_workers);
        for (wi, a) in actions.iter().enumerate() {
            if !a.charge {
                assert!(
                    env.valid_moves(wi)[a.movement.index()],
                    "{} chose an invalid move {:?} for worker {wi}",
                    scheduler.name(),
                    a.movement
                );
            }
        }
        env.step(&actions);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn greedy_decisions_are_always_executable(cfg in env_config(), seed in any::<u64>()) {
        assert_executable(&mut GreedyScheduler, &cfg, seed);
    }

    #[test]
    fn dnc_decisions_are_always_executable(cfg in env_config(), seed in any::<u64>()) {
        assert_executable(&mut DncScheduler::default(), &cfg, seed);
    }

    #[test]
    fn random_decisions_are_always_executable(cfg in env_config(), seed in any::<u64>()) {
        assert_executable(&mut RandomScheduler, &cfg, seed);
    }

    #[test]
    fn greedy_never_moves_away_from_strictly_better_cells(seed in any::<u64>()) {
        // If some reachable position yields strictly positive collection,
        // greedy must pick a positive-gain move (never a zero-gain one).
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 12;
        cfg.seed = seed;
        let env = CrowdsensingEnv::new(cfg.clone());
        let mut rng = StdRng::seed_from_u64(seed);
        let actions = GreedyScheduler.decide(&env, &mut rng);
        for (wi, a) in actions.iter().enumerate() {
            if a.charge {
                continue;
            }
            let best_gain = Move::ALL
                .iter()
                .filter_map(|&m| env.peek_move(wi, m))
                .map(|p| env.potential_collection(&p))
                .fold(0.0f32, f32::max);
            if best_gain > 1e-6 {
                let chosen = env.peek_move(wi, a.movement).unwrap();
                prop_assert!(
                    env.potential_collection(&chosen) > 1e-6,
                    "worker {wi}: best gain {best_gain} available but greedy chose a barren move"
                );
            }
        }
    }

    #[test]
    fn low_battery_dnc_approaches_stations(seed in any::<u64>()) {
        let mut cfg = EnvConfig::tiny();
        cfg.num_pois = 0;
        cfg.num_stations = 1;
        cfg.seed = seed;
        let mut env = CrowdsensingEnv::new(cfg);
        env.set_worker_energy(0, 5.0);
        let before = env.workers()[0]
            .pos
            .dist(&env.stations()[0].pos);
        let mut rng = StdRng::seed_from_u64(seed);
        let actions = DncScheduler::default().decide(&env, &mut rng);
        if actions[0].charge {
            // Already in range — fine.
            prop_assert!(env.can_charge(0));
        } else {
            let target = env.peek_move(0, actions[0].movement).unwrap();
            let after = target.dist(&env.stations()[0].pos);
            prop_assert!(after <= before + 1e-5, "moved away from the only station");
        }
    }
}
