//! Oracle-vs-brute-force verification of the Hungarian solver: on every
//! matrix small enough to enumerate (≤ 6×6), the O(n³) algorithm must return
//! exactly the exhaustive minimum — plus the degenerate shapes the scheduler
//! relies on (more workers than PoIs, all-equal costs, typed non-finite
//! rejection).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vc_baselines::hungarian::{solve, HungarianError};

const CASES: usize = 48;

/// Exhaustive minimum assignment cost: enumerates every injection of the
/// smaller side into the larger. Only viable for min(rows, cols) ≤ 6.
fn brute_force_min(costs: &[f32], rows: usize, cols: usize) -> f32 {
    fn recurse(
        costs: &[f32],
        cols: usize,
        row: usize,
        rows: usize,
        taken: &mut Vec<bool>,
        acc: f32,
        best: &mut f32,
    ) {
        if row == rows {
            *best = best.min(acc);
            return;
        }
        // When rows > cols some rows stay unmatched; allow skipping a row
        // only if there are more rows left than free columns.
        let free = taken.iter().filter(|t| !**t).count();
        if rows - row > free {
            recurse(costs, cols, row + 1, rows, taken, acc, best);
        }
        for c in 0..cols {
            if !taken[c] {
                taken[c] = true;
                recurse(costs, cols, row + 1, rows, taken, acc + costs[row * cols + c], best);
                taken[c] = false;
            }
        }
    }
    let mut best = f32::INFINITY;
    let mut taken = vec![false; cols];
    recurse(costs, cols, 0, rows, &mut taken, 0.0, &mut best);
    best
}

#[test]
fn matches_brute_force_on_random_matrices() {
    let mut rng = StdRng::seed_from_u64(0x0123);
    for case in 0..CASES {
        let rows = rng.gen_range(1..7);
        let cols = rng.gen_range(1..7);
        let costs: Vec<f32> = (0..rows * cols).map(|_| rng.gen::<f32>() * 10.0).collect();
        let a = solve(&costs, rows, cols).unwrap();
        let expect = brute_force_min(&costs, rows, cols);
        assert!(
            (a.total_cost - expect).abs() < 1e-4,
            "case {case} ({rows}x{cols}): hungarian {} vs brute force {expect}\n{costs:?}",
            a.total_cost
        );
        // The reported matching must sum to the reported cost and be a
        // valid injection of min(rows, cols) pairs.
        let matched: Vec<usize> = a.assigned.iter().flatten().copied().collect();
        assert_eq!(matched.len(), rows.min(cols), "case {case}: wrong matching size");
        let mut uniq = matched.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), matched.len(), "case {case}: a column matched twice");
        let sum: f32 =
            a.assigned.iter().enumerate().filter_map(|(r, c)| c.map(|c| costs[r * cols + c])).sum();
        assert!((sum - a.total_cost).abs() < 1e-4, "case {case}: matching does not sum to cost");
    }
}

#[test]
fn more_workers_than_pois_assigns_the_cheapest_subset() {
    let mut rng = StdRng::seed_from_u64(0x4567);
    for case in 0..CASES {
        let rows = rng.gen_range(2..7);
        let cols = rng.gen_range(1..rows); // strictly fewer columns
        let costs: Vec<f32> = (0..rows * cols).map(|_| rng.gen::<f32>() * 5.0).collect();
        let a = solve(&costs, rows, cols).unwrap();
        assert_eq!(
            a.assigned.iter().filter(|c| c.is_some()).count(),
            cols,
            "case {case}: must match exactly {cols} workers"
        );
        let expect = brute_force_min(&costs, rows, cols);
        assert!(
            (a.total_cost - expect).abs() < 1e-4,
            "case {case} ({rows}x{cols}): {} vs {expect}",
            a.total_cost
        );
    }
}

#[test]
fn all_equal_costs_give_any_perfect_matching_at_n_times_c() {
    for n in 1..=6usize {
        let costs = vec![2.5f32; n * n];
        let a = solve(&costs, n, n).unwrap();
        assert!((a.total_cost - 2.5 * n as f32).abs() < 1e-5);
        let mut cols: Vec<usize> = a.assigned.iter().flatten().copied().collect();
        cols.sort_unstable();
        assert_eq!(cols, (0..n).collect::<Vec<_>>(), "n={n}: not a permutation");
    }
}

#[test]
fn non_finite_cells_are_typed_errors_anywhere_in_the_matrix() {
    let mut rng = StdRng::seed_from_u64(0x89AB);
    for _ in 0..CASES {
        let rows = rng.gen_range(1..7);
        let cols = rng.gen_range(1..7);
        let mut costs: Vec<f32> = (0..rows * cols).map(|_| rng.gen()).collect();
        let bad = rng.gen_range(0..costs.len());
        costs[bad] = if rng.gen_bool(0.5) { f32::NAN } else { f32::NEG_INFINITY };
        let err = solve(&costs, rows, cols).unwrap_err();
        assert_eq!(
            err,
            HungarianError::NonFiniteCost { row: bad / cols, col: bad % cols },
            "error must name the first offending cell"
        );
    }
}

#[test]
fn negative_costs_are_legal_inputs() {
    // Reward-style matrices (negated gains) must solve exactly like shifted
    // positive ones: optimality is translation invariant per row.
    let mut rng = StdRng::seed_from_u64(0xCDEF);
    for case in 0..CASES {
        let n = rng.gen_range(1..7);
        let costs: Vec<f32> = (0..n * n).map(|_| rng.gen::<f32>() * 4.0 - 2.0).collect();
        let a = solve(&costs, n, n).unwrap();
        let expect = brute_force_min(&costs, n, n);
        assert!((a.total_cost - expect).abs() < 1e-4, "case {case}: {} vs {expect}", a.total_cost);
    }
}

#[test]
fn no_other_assignment_beats_the_oracle_even_adversarially() {
    // Direct optimality statement on 4×4: every one of the 24 permutations
    // costs at least the oracle's total.
    let mut rng = StdRng::seed_from_u64(0x7777);
    let perms4: Vec<[usize; 4]> = {
        let mut out = Vec::new();
        for a in 0..4 {
            for b in 0..4 {
                for c in 0..4 {
                    for d in 0..4 {
                        let p = [a, b, c, d];
                        let mut s = p;
                        s.sort_unstable();
                        if s == [0, 1, 2, 3] {
                            out.push(p);
                        }
                    }
                }
            }
        }
        out
    };
    for _ in 0..CASES {
        let costs: Vec<f32> = (0..16).map(|_| rng.gen::<f32>() * 9.0).collect();
        let oracle = solve(&costs, 4, 4).unwrap().total_cost;
        for p in &perms4 {
            let cost: f32 = p.iter().enumerate().map(|(r, &c)| costs[r * 4 + c]).sum();
            assert!(oracle <= cost + 1e-4, "permutation {p:?} ({cost}) beat the oracle ({oracle})");
        }
    }
}
