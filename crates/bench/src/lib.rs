//! # vc-bench — shared fixtures for the DRL-CEWS benchmark suite
//!
//! Every table and figure of the paper has a corresponding Criterion bench
//! target (see `benches/`); this library provides the scenario and trainer
//! fixtures they share. Benchmarks run at a reduced but structurally
//! faithful scale: one training episode of the real chief–employee loop is
//! the unit of work, so relative costs across configurations reproduce the
//! paper's wall-clock comparisons (Fig. 3) even though absolute numbers
//! differ from the authors' GPU testbed.

use drl_cews::prelude::*;
use vc_env::prelude::*;

/// The benchmark scenario: the paper map at a laptop-scale horizon.
pub fn bench_env() -> EnvConfig {
    let mut cfg = EnvConfig::paper_default();
    cfg.horizon = 40;
    cfg.num_pois = 80;
    cfg
}

/// A DRL-CEWS trainer configured for benchmarking, with `employees` threads
/// and the given PPO minibatch size.
///
/// # Panics
///
/// Panics if the fixture configuration cannot start a trainer — a broken
/// fixture should abort the benchmark run loudly.
pub fn bench_trainer(employees: usize, minibatch: usize) -> Trainer {
    let mut cfg = TrainerConfig::drl_cews(bench_env());
    cfg.num_employees = employees;
    cfg.ppo.epochs = 1;
    cfg.ppo.minibatch = minibatch;
    Trainer::new(cfg).unwrap_or_else(|e| panic!("bench fixture failed to start: {e}"))
}

/// The chief-loop stress fixture: many employees, many gather rounds, a
/// deliberately small map so the measurement is dominated by the chief's
/// broadcast → rollout → gather → apply cycle rather than by episode
/// simulation. One `train_episode` performs exactly `rounds` gather rounds
/// (one per PPO epoch), so wall-clock per episode tracks the per-round
/// overhead of the chief path — including the cost of its (disabled)
/// telemetry hooks.
///
/// # Panics
///
/// Panics if the fixture configuration cannot start a trainer.
pub fn chief_stress_trainer(employees: usize, rounds: usize) -> Trainer {
    let mut env = EnvConfig::tiny();
    env.horizon = 15;
    env.num_pois = 20;
    let mut cfg = TrainerConfig::drl_cews(env);
    cfg.curiosity = CuriosityChoice::None;
    cfg.num_employees = employees;
    cfg.ppo.epochs = rounds;
    cfg.ppo.minibatch = 16;
    Trainer::new(cfg).unwrap_or_else(|e| panic!("chief stress fixture failed to start: {e}"))
}

/// A DPPO trainer at benchmark scale.
///
/// # Panics
///
/// Panics if the fixture configuration cannot start a trainer.
pub fn bench_dppo(employees: usize, minibatch: usize) -> Trainer {
    let mut cfg = TrainerConfig::dppo(bench_env());
    cfg.num_employees = employees;
    cfg.ppo.epochs = 1;
    cfg.ppo.minibatch = minibatch;
    Trainer::new(cfg).unwrap_or_else(|e| panic!("bench fixture failed to start: {e}"))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_construct() {
        assert!(bench_env().validate().is_ok());
        let mut t = bench_trainer(1, 16);
        let s = t.train_episode().unwrap();
        assert!(s.kappa.is_finite());
    }
}
