//! `serve_load` — load generator and fault injector for the `vc_serve`
//! daemon, recording latency percentiles and shed behaviour into the
//! `BENCH_serve.json` trajectory.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p vc-bench --bin serve_load [-- --smoke] [--out PATH]
//!          [--clients N] [--per-client N] [--no-faults]
//! ```
//!
//! The generator starts a daemon in-process on a loopback port, then runs a
//! burst-overload phase (many concurrent clients against a deliberately
//! small admission queue) while — unless `--no-faults` — injecting faults
//! alongside the load:
//!
//! * **corrupt hot-reload** — a truncated checkpoint is offered for reload
//!   repeatedly; every attempt must be rejected with rollback, and a valid
//!   reload afterwards must swap cleanly;
//! * **wedged clients** — connections that claim a frame and stall, which
//!   the daemon's read timeout must reap without collateral damage;
//! * **malformed frames** — garbage payloads that must be answered with
//!   typed `BadRequest` errors in-band.
//!
//! Every load request must be answered (a schedule or a typed rejection);
//! a lost response, a daemon crash, or a corrupt reload that swaps in fails
//! the run with a non-zero exit. Each run appends a record
//! `{schema_version, mode, unix_time_s, results: [{metric, value}]}` with
//! `p50_us` / `p99_us` latency, `shed_rate`, and the fault tallies.

#![allow(clippy::unwrap_used, clippy::expect_used)] // a broken bench fixture should abort loudly

use drl_cews::prelude::*;
use serde::Value;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use vc_env::prelude::EnvConfig;
use vc_serve::prelude::*;
use vc_telemetry::Telemetry;

/// Outcome tallies from the load phase.
#[derive(Default)]
struct Tally {
    served_policy: u64,
    served_greedy: u64,
    queue_full: u64,
    deadline: u64,
    internal: u64,
    lost: u64,
    latencies_us: Vec<f64>,
}

fn checkpoint_bytes() -> Vec<u8> {
    let mut env = EnvConfig::tiny();
    env.horizon = 8;
    let mut cfg = TrainerConfig::drl_cews(env).quick();
    cfg.num_employees = 1;
    let mut trainer = Trainer::new(cfg).unwrap();
    trainer.checkpoint_v2().unwrap().to_vec()
}

fn snapshot(id: u64) -> ScheduleRequest {
    ScheduleRequest {
        id,
        deadline_ms: 150,
        workers: vec![WorkerState { x: 1.0, y: 1.0, energy: 10.0 }],
        poi_data: vec![0.5; 4],
    }
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One load client: its own connection, sequential requests, everything
/// answered or the run is marked lost.
fn load_client(addr: &str, first_id: u64, count: u64) -> Tally {
    let mut tally = Tally::default();
    let Ok(mut client) = ServeClient::connect_tcp(addr, Duration::from_secs(10)) else {
        tally.lost += count;
        return tally;
    };
    for i in 0..count {
        let started = Instant::now();
        match client.schedule(snapshot(first_id + i)) {
            Ok(Response::Schedule(reply)) => {
                let us = started.elapsed().as_secs_f64() * 1e6;
                tally.latencies_us.push(us);
                if reply.mode == "greedy" {
                    tally.served_greedy += 1;
                } else {
                    tally.served_policy += 1;
                }
            }
            Ok(Response::Rejected(WireError::QueueFull { .. })) => tally.queue_full += 1,
            Ok(Response::Rejected(WireError::DeadlineExceeded { .. })) => tally.deadline += 1,
            Ok(Response::Rejected(_)) => tally.internal += 1,
            Ok(_) | Err(_) => tally.lost += 1,
        }
    }
    tally
}

/// Corrupt-reload injector: alternates rejected and accepted reloads while
/// the load runs. Returns `(rejected, accepted)`; any truncated reload
/// that *swapped in* panics the injector (caught as a failed run).
fn reload_chaos(addr: &str, truncated: &Path, good: &Path, rounds: u32) -> (u64, u64) {
    let mut client = ServeClient::connect_tcp(addr, Duration::from_secs(10)).unwrap();
    let mut rejected = 0;
    let mut accepted = 0;
    for _ in 0..rounds {
        match client.request(&Request::Reload { path: truncated.display().to_string() }).unwrap() {
            Response::Reloaded { ok: false, .. } => rejected += 1,
            other => panic!("corrupt reload was not rejected: {other:?}"),
        }
        match client.request(&Request::Reload { path: good.display().to_string() }).unwrap() {
            Response::Reloaded { ok: true, .. } => accepted += 1,
            other => panic!("valid reload did not swap: {other:?}"),
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    (rejected, accepted)
}

/// Malformed-frame injector: every garbage frame must be answered with a
/// typed `BadRequest` on the same connection. Returns how many were.
fn malformed_chaos(addr: &str, rounds: u32) -> u64 {
    let mut client = ServeClient::connect_tcp(addr, Duration::from_secs(10)).unwrap();
    let mut answered = 0;
    for i in 0..rounds {
        let garbage: &[u8] = if i % 2 == 0 { b"{\"not\":\"a request\"}" } else { b"\xFF\xFE\x00" };
        client.send_raw(garbage).unwrap();
        match client.read_response().unwrap() {
            Response::Rejected(WireError::BadRequest { .. }) => answered += 1,
            other => panic!("malformed frame got a non-BadRequest answer: {other:?}"),
        }
    }
    answered
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let faults = !args.iter().any(|a| a == "--no-faults");
    let flag =
        |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned();
    let out_path = flag("--out").unwrap_or_else(|| "BENCH_serve.json".to_owned());
    let clients: u64 =
        flag("--clients").and_then(|v| v.parse().ok()).unwrap_or(if smoke { 4 } else { 8 });
    let per_client: u64 =
        flag("--per-client").and_then(|v| v.parse().ok()).unwrap_or(if smoke { 25 } else { 250 });

    // Fixture: one good and one truncated checkpoint on disk.
    let dir = std::env::temp_dir().join(format!("vc_serve_load_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create fixture dir");
    let bytes = checkpoint_bytes();
    let good = dir.join("good.v2");
    let truncated = dir.join("truncated.v2");
    std::fs::write(&good, &bytes).expect("write good checkpoint");
    std::fs::write(&truncated, &bytes[..bytes.len() / 2]).expect("write truncated checkpoint");

    // A deliberately small queue so the burst actually sheds.
    let cfg = ServeConfig {
        queue_cap: 8,
        batch_max: 4,
        default_deadline: Duration::from_millis(150),
        slo: Duration::from_millis(10),
        trip_after: 2,
        recover_after: 4,
        read_timeout: Duration::from_millis(500),
        pop_wait: Duration::from_millis(2),
        ..ServeConfig::default()
    };
    let artifact = drl_cews::serving::PolicyArtifact::from_bytes(&bytes).expect("load artifact");
    let server = Server::start(artifact, cfg, Telemetry::new(), Some("127.0.0.1:0"), None)
        .expect("start daemon");
    let addr = server.tcp_addr().expect("tcp addr").to_string();
    println!("serve_load: daemon on {addr} ({clients} clients x {per_client} requests)");

    // Fault injectors run alongside the load.
    let stop_wedge = Arc::new(AtomicBool::new(false));
    let mut fault_threads = Vec::new();
    let mut malformed_threads = Vec::new();
    if faults {
        let rounds = if smoke { 3 } else { 20 };
        let (a, t, g) = (addr.clone(), truncated.clone(), good.clone());
        fault_threads.push(
            std::thread::Builder::new()
                .name("fault-reload".into())
                .spawn(move || reload_chaos(&a, &t, &g, rounds))
                .expect("spawn reload chaos"),
        );
        let a = addr.clone();
        malformed_threads.push(
            std::thread::Builder::new()
                .name("fault-malformed".into())
                .spawn(move || malformed_chaos(&a, rounds))
                .expect("spawn malformed chaos"),
        );
        // Two wedged connections held open for the whole load phase.
        for _ in 0..2 {
            let mut c =
                ServeClient::connect_tcp(&addr, Duration::from_secs(10)).expect("wedge connect");
            c.wedge().expect("wedge");
            let stop = Arc::clone(&stop_wedge);
            fault_threads.push(
                std::thread::Builder::new()
                    .name("fault-wedge".into())
                    .spawn(move || {
                        // ordering: plain test latch
                        while !stop.load(Ordering::Relaxed) {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        drop(c);
                        (0, 0)
                    })
                    .expect("spawn wedge holder"),
            );
        }
    }

    // Burst-overload load phase.
    let started = Instant::now();
    let mut load_threads = Vec::new();
    for c in 0..clients {
        let addr = addr.clone();
        load_threads.push(
            std::thread::Builder::new()
                .name(format!("load-{c}"))
                .spawn(move || load_client(&addr, c * 1_000_000, per_client))
                .expect("spawn load client"),
        );
    }
    let mut total = Tally::default();
    for handle in load_threads {
        let t = handle.join().expect("load client panicked");
        total.served_policy += t.served_policy;
        total.served_greedy += t.served_greedy;
        total.queue_full += t.queue_full;
        total.deadline += t.deadline;
        total.internal += t.internal;
        total.lost += t.lost;
        total.latencies_us.extend(t.latencies_us);
    }
    let wall_s = started.elapsed().as_secs_f64();

    // ordering: plain test latch
    stop_wedge.store(true, Ordering::Relaxed);
    let mut reload_rejected = 0;
    let mut reload_accepted = 0;
    for handle in fault_threads {
        let (r, a) = handle.join().expect("fault injector panicked");
        reload_rejected += r;
        reload_accepted += a;
    }
    let malformed_answered = malformed_threads
        .into_iter()
        .map(|h| h.join().expect("malformed injector panicked"))
        .sum::<u64>();

    let generation = server.generation();
    let rollbacks = server.rollbacks();
    let report = server.shutdown(Duration::from_secs(3));

    total.latencies_us.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let served = total.served_policy + total.served_greedy;
    let shed = total.queue_full + total.deadline;
    let answered = served + shed + total.internal;
    let sent = clients * per_client;
    let p50 = percentile(&total.latencies_us, 0.50);
    let p99 = percentile(&total.latencies_us, 0.99);
    let shed_rate = if answered > 0 { shed as f64 / answered as f64 } else { 0.0 };

    println!(
        "serve_load: {served} served ({} policy, {} greedy), {shed} shed \
         ({} queue-full, {} deadline), {} internal, {} lost, {:.1}s wall",
        total.served_policy,
        total.served_greedy,
        total.queue_full,
        total.deadline,
        total.internal,
        total.lost,
        wall_s
    );
    println!(
        "serve_load: p50 {p50:.0}us p99 {p99:.0}us shed rate {:.1}% | reloads \
         {reload_rejected} rejected / {reload_accepted} swapped (gen {generation}, \
         {rollbacks} rollbacks) | {malformed_answered} malformed answered | drain \
         rejected {} pool quiesced {}",
        shed_rate * 100.0,
        report.rejected_in_drain,
        report.pool_quiesced,
    );

    // Invariants — any violation fails the run.
    let mut failed = false;
    if total.lost > 0 || answered != sent {
        eprintln!("serve_load: FAIL: {} of {sent} requests unanswered", sent - answered);
        failed = true;
    }
    if total.internal > 0 {
        eprintln!("serve_load: FAIL: {} internal errors", total.internal);
        failed = true;
    }
    if served == 0 {
        eprintln!("serve_load: FAIL: nothing was served under load");
        failed = true;
    }
    if faults && (reload_rejected == 0 || reload_accepted == 0) {
        eprintln!("serve_load: FAIL: reload chaos did not exercise both paths");
        failed = true;
    }
    if faults && rollbacks < reload_rejected {
        eprintln!("serve_load: FAIL: rollback counter lost rejections");
        failed = true;
    }

    // Append the run record to the trajectory.
    let metric = |name: &str, value: f64| {
        Value::Map(vec![
            ("metric".into(), Value::Str(name.into())),
            ("value".into(), Value::Float(value)),
        ])
    };
    let results = vec![
        metric("p50_us", p50),
        metric("p99_us", p99),
        metric("shed_rate", shed_rate),
        metric("served_policy", total.served_policy as f64),
        metric("served_greedy", total.served_greedy as f64),
        metric("shed_queue_full", total.queue_full as f64),
        metric("shed_deadline", total.deadline as f64),
        metric("reload_rejected", reload_rejected as f64),
        metric("reload_accepted", reload_accepted as f64),
        metric("malformed_answered", malformed_answered as f64),
        metric("wall_s", wall_s),
        metric("clients", clients as f64),
        metric("per_client", per_client as f64),
    ];
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let run = Value::Map(vec![
        ("schema_version".into(), Value::UInt(1)),
        ("mode".into(), Value::Str(if smoke { "smoke" } else { "full" }.into())),
        ("unix_time_s".into(), Value::UInt(unix_s)),
        ("results".into(), Value::Seq(results)),
    ]);
    let mut runs: Vec<Value> = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|t| serde_json::from_str::<Value>(&t).ok())
        .and_then(|v| v.as_seq().map(<[Value]>::to_vec))
        .unwrap_or_default();
    runs.push(run);
    let text = serde_json::to_string_pretty(&Value::Seq(runs)).expect("serialize trajectory");
    std::fs::write(&out_path, &text).expect("write trajectory file");
    println!("serve_load: wrote {out_path}");

    let _ = std::fs::remove_dir_all(&dir);
    if failed {
        std::process::exit(1);
    }
}
