//! Kernel & episode benchmark trajectory: times the dense-kernel hot path
//! (naive vs blocked GEMM, whole-batch conv forward/backward) and one real
//! training episode, then appends a run record to `BENCH_kernels.json` so
//! the perf history accumulates commit over commit.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p vc-bench --bin bench_kernels [-- --smoke] [--out PATH]
//! ```
//!
//! `--smoke` runs each target for a couple of iterations — enough to
//! validate the pipeline and the emitted JSON schema without meaningful
//! statistics (used by `cargo xtask bench --smoke` and CI).
//!
//! Each run record is `{schema_version, mode, unix_time_s, target_features,
//! simd_kernel, results: [...]}` with one result per `(op, shape,
//! threads)`: `{op, shape, threads, iters, ns_per_iter, gflops}`. The file
//! as a whole is a JSON array of runs — the trajectory. Schema version 2
//! added `target_features` (the CPU features detected at run time, e.g.
//! `avx2,fma`) and `simd_kernel` (which GEMM micro-kernel flavor the run
//! exercised); version-1 records in the history stay valid.

#![allow(clippy::unwrap_used, clippy::expect_used)] // a broken bench fixture should abort loudly

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Value;
use std::time::Instant;
use vc_bench::{bench_trainer, chief_stress_trainer};
use vc_env::prelude::*;
use vc_nn::ops::conv::{conv2d_backward, conv2d_forward};
use vc_nn::ops::gemm;
use vc_nn::prelude::*;
use vc_rl::prelude::*;

/// One timed benchmark case.
struct Rec {
    op: &'static str,
    shape: String,
    threads: usize,
    iters: u64,
    ns_per_iter: f64,
    flops: f64,
}

impl Rec {
    fn to_value(&self) -> Value {
        let gflops = if self.ns_per_iter > 0.0 && self.flops > 0.0 {
            self.flops / self.ns_per_iter
        } else {
            0.0
        };
        Value::Map(vec![
            ("op".into(), Value::Str(self.op.into())),
            ("shape".into(), Value::Str(self.shape.clone())),
            ("threads".into(), Value::UInt(self.threads as u64)),
            ("iters".into(), Value::UInt(self.iters)),
            ("ns_per_iter".into(), Value::Float(self.ns_per_iter)),
            ("gflops".into(), Value::Float(gflops)),
        ])
    }
}

/// Times `f` after one warm-up pass: runs `reps` batches of `iters`
/// iterations and reports the fastest batch's ns/iter. Minimum-of-batches
/// filters scheduler noise, which on a shared box otherwise dominates
/// sub-millisecond kernels and makes the trajectory (and the smoke
/// regression gate reading it) flap.
fn time_ns_reps(iters: u64, reps: u32, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Single-batch timing for the expensive end-to-end records.
fn time_ns(iters: u64, f: impl FnMut()) -> f64 {
    time_ns_reps(iters, 1, f)
}

/// Deterministic pseudo-random fill (no RNG state shared with training).
fn lcg_fill(seed: u32, len: usize) -> Vec<f32> {
    let mut s = seed.wrapping_mul(2654435761).wrapping_add(1);
    (0..len)
        .map(|_| {
            s = s.wrapping_mul(1664525).wrapping_add(1013904223);
            (s >> 9) as f32 / (1u32 << 23) as f32 - 0.5
        })
        .collect()
}

fn bench_matmuls(iters: u64, out: &mut Vec<Rec>) {
    /// Timed batches per record; the fastest batch is reported.
    const REPS: u32 = 5;
    let shapes: &[(usize, usize, usize)] = &[(64, 64, 64), (256, 256, 256), (33, 65, 127)];
    for &(m, k, n) in shapes {
        let a = lcg_fill(1, m * k);
        let b = lcg_fill(2, k * n);
        let mut c = vec![0.0f32; m * n];
        let flops = 2.0 * m as f64 * k as f64 * n as f64;
        let shape = format!("{m}x{k}x{n}");
        // Sub-threshold shapes finish in ~10 µs; scale their batches up so
        // one batch is milliseconds, not microseconds, of work.
        let iters = if m * k * n < gemm::PAR_THRESHOLD { iters * 40 } else { iters };
        if (m, k, n) == (256, 256, 256) {
            // The baseline the blocked kernel is measured against.
            let ns = time_ns_reps(iters, REPS, || {
                gemm::matmul_naive(
                    std::hint::black_box(&a),
                    std::hint::black_box(&b),
                    &mut c,
                    m,
                    k,
                    n,
                );
            });
            out.push(Rec {
                op: "matmul_naive",
                shape: shape.clone(),
                threads: 1,
                iters,
                ns_per_iter: ns,
                flops,
            });
        }
        // The headline 256³ shape carries the full thread ladder so the
        // trajectory shows how pooled dispatch scales (t8 included per the
        // ROADMAP scaling target); small shapes keep t1/t2, which is enough
        // to catch the dispatch threshold misfiring.
        let thread_ladder: &[usize] =
            if (m, k, n) == (256, 256, 256) { &[1, 2, 4, 8] } else { &[1, 2] };
        for &threads in thread_ladder {
            let ns = time_ns_reps(iters, REPS, || {
                gemm::gemm(
                    std::hint::black_box(&a),
                    std::hint::black_box(&b),
                    &mut c,
                    m,
                    k,
                    n,
                    threads,
                );
            });
            out.push(Rec {
                op: "matmul_blocked",
                shape: shape.clone(),
                threads,
                iters,
                ns_per_iter: ns,
                flops,
            });
        }
        if (m, k, n) == (256, 256, 256) {
            // Old dispatcher baseline: scoped threads spawned per call. The
            // gap between this and `matmul_blocked` at the same thread count
            // is exactly what the persistent pool buys.
            let ns = time_ns_reps(iters, REPS, || {
                gemm::gemm_scoped(
                    std::hint::black_box(&a),
                    std::hint::black_box(&b),
                    &mut c,
                    m,
                    k,
                    n,
                    2,
                );
            });
            out.push(Rec {
                op: "matmul_scoped",
                shape: shape.clone(),
                threads: 2,
                iters,
                ns_per_iter: ns,
                flops,
            });
        }
    }
}

/// Times one environment step's worth of policy inference, sequentially
/// (`E` batch-of-one forwards) and batched (one `[E, C, H, W]` forward).
fn bench_rollout_step(iters: u64, out: &mut Vec<Rec>) {
    let env_cfg = EnvConfig::tiny();
    let envs: Vec<CrowdsensingEnv> =
        (0..8).map(|_| CrowdsensingEnv::new(env_cfg.clone())).collect();
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let net = ActorCritic::new(
        &mut store,
        NetConfig::for_scenario(env_cfg.grid, env_cfg.num_workers),
        &mut rng,
    );
    let opts = PolicyOptions::default();
    let shape = format!("envs{}", envs.len());

    let ns = time_ns(iters, || {
        for env in &envs {
            std::hint::black_box(sample_action(&net, &store, env, opts, &mut rng));
        }
    });
    out.push(Rec {
        op: "rollout_step_seq",
        shape: shape.clone(),
        threads: gemm::kernel_threads(),
        iters,
        ns_per_iter: ns,
        flops: 0.0,
    });

    let refs: Vec<&CrowdsensingEnv> = envs.iter().collect();
    let ns = time_ns(iters, || {
        std::hint::black_box(sample_actions_batched(&net, &store, &refs, opts, &mut rng));
    });
    out.push(Rec {
        op: "rollout_step_batched",
        shape,
        threads: gemm::kernel_threads(),
        iters,
        ns_per_iter: ns,
        flops: 0.0,
    });
}

/// Times one PPO gradient computation over a synthetic rollout buffer — the
/// whole-update hot path: minibatch assembly, batched forward, surrogate
/// loss, backward.
fn bench_ppo_update(iters: u64, out: &mut Vec<Rec>) {
    let env_cfg = EnvConfig::tiny();
    let env = CrowdsensingEnv::new(env_cfg.clone());
    let mut rng = StdRng::seed_from_u64(13);
    let mut store = ParamStore::new();
    let net = ActorCritic::new(
        &mut store,
        NetConfig::for_scenario(env_cfg.grid, env_cfg.num_workers),
        &mut rng,
    );
    let w = env_cfg.num_workers;
    let state_len = vc_env::state::encode(&env).len();
    let ppo = PpoConfig::default();
    let mut buffer = RolloutBuffer::new();
    let steps = 32usize;
    for i in 0..steps {
        buffer.push(Transition {
            state: lcg_fill(100 + i as u32, state_len),
            moves: (0..w).map(|j| (i + j) % MOVES_PER_WORKER).collect(),
            charges: (0..w).map(|j| (i + j) % CHARGE_CHOICES).collect(),
            move_mask: vec![true; w * MOVES_PER_WORKER],
            charge_mask: vec![true; w * CHARGE_CHOICES],
            logp: -2.0,
            reward: (i as f32 * 0.7).sin(),
            value: 0.0,
        });
    }
    finish_rollout(&mut buffer, &ppo, 0.0);
    let indices: Vec<usize> = (0..steps).collect();

    let ns = time_ns(iters, || {
        store.zero_grads();
        std::hint::black_box(compute_ppo_grads(&net, &mut store, &buffer, &indices, &ppo));
    });
    out.push(Rec {
        op: "ppo_update",
        shape: format!("batch{steps} workers{w}"),
        threads: gemm::kernel_threads(),
        iters,
        ns_per_iter: ns,
        flops: 0.0,
    });
}

fn bench_conv(iters: u64, out: &mut Vec<Rec>) {
    // The paper's CNN encoder front: [B=32, 3, 16, 16], 3→16 channels, 3x3.
    let cfg = ConvCfg { in_channels: 3, out_channels: 16, kernel: 3, stride: 1, padding: 1 };
    let (bsz, h, w) = (32usize, 16usize, 16usize);
    let x = Tensor::from_vec(&[bsz, 3, h, w], lcg_fill(3, bsz * 3 * h * w));
    let wt = Tensor::from_vec(&[16, 3, 3, 3], lcg_fill(4, 16 * 3 * 9));
    let bias = Tensor::from_vec(&[16], lcg_fill(5, 16));
    let (ho, wo) = (cfg.out_size(h).unwrap(), cfg.out_size(w).unwrap());
    let patch = 3 * 9;
    let flops = 2.0 * (bsz * 16 * ho * wo * patch) as f64;
    let shape = format!("b{bsz}c3->16 {h}x{w}k3");

    let ns = time_ns(iters, || {
        std::hint::black_box(conv2d_forward(std::hint::black_box(&x), &wt, &bias, &cfg));
    });
    out.push(Rec {
        op: "conv2d_forward",
        shape: shape.clone(),
        threads: gemm::kernel_threads(),
        iters,
        ns_per_iter: ns,
        flops,
    });

    let f = conv2d_forward(&x, &wt, &bias, &cfg);
    let gout = Tensor::ones(f.output.shape());
    let ns = time_ns(iters, || {
        std::hint::black_box(conv2d_backward(
            std::hint::black_box(&gout),
            &f.cols,
            &wt,
            x.shape(),
            &cfg,
        ));
    });
    out.push(Rec {
        op: "conv2d_backward",
        shape,
        threads: gemm::kernel_threads(),
        iters,
        ns_per_iter: ns,
        flops: 2.0 * flops, // two whole-batch GEMMs of forward volume
    });
}

fn bench_episode(iters: u64, out: &mut Vec<Rec>) {
    let mut trainer = bench_trainer(2, 16);
    let ns = time_ns(iters, || {
        trainer.train_episode().expect("bench episode failed");
    });
    out.push(Rec {
        op: "train_episode",
        shape: "employees2 minibatch16".into(),
        threads: 2,
        iters,
        ns_per_iter: ns,
        flops: 0.0,
    });
}

/// Times one environment step (greedy decide + step) per scenario family:
/// the default paper-style grid against the obstacle-dense maze and the
/// recharge-scarce map. The three records separate "the simulator got
/// slower" from "a family's geometry makes stepping slower" (collision
/// segment tests scale with obstacle count, so the maze is the stress row).
fn bench_env_step(iters: u64, out: &mut Vec<Rec>) {
    use vc_baselines::prelude::*;
    use vc_env::scenario_gen::generate;
    /// Timed batches per record; the fastest batch is reported.
    const REPS: u32 = 5;
    let families = [
        ScenarioFamily::DefaultGrid,
        ScenarioFamily::CityBlockMaze,
        ScenarioFamily::RechargeScarce,
    ];
    for family in families {
        let scn = generate(family, 7).expect("bench scenario generation failed");
        let mut env = scn.try_env().expect("bench scenario instantiation failed");
        let workers = env.workers().len();
        let obstacles = env.config().obstacles.len();
        let mut sched = GreedyScheduler;
        let mut rng = StdRng::seed_from_u64(7);
        let ns = time_ns_reps(iters, REPS, || {
            if env.done() {
                env.reset();
            }
            let actions = sched.decide(&env, &mut rng);
            env.step(std::hint::black_box(&actions));
        });
        out.push(Rec {
            op: "env_step",
            shape: format!("{} w{workers} obs{obstacles}", family.name()),
            threads: 1,
            iters,
            ns_per_iter: ns,
            flops: 0.0,
        });
    }
}

/// Times the struct-of-arrays fleet path. The `env_step` worker ladder
/// (10 → 100 → 1000 workers on an otherwise identical 160×160 map with
/// 20 000 PoIs) isolates how columnar stepping scales with fleet size
/// alone: the per-slot fixed cost (PoI mirror sync, grid bookkeeping)
/// amortizes across workers, which is exactly the ≤25× (w1000 vs w10)
/// acceptance bound. Actions come from the O(W) [`SweepScheduler`] so the
/// decide cost stays negligible next to the step being measured — a
/// lookahead baseline would cost O(W·moves·P) and drown the signal. The
/// `fleet_rollout` record closes the loop: one factored-head policy
/// forward ([`FleetActorCritic`]) plus one fleet step at 1000 workers.
fn bench_fleet(iters: u64, rollout_iters: u64, out: &mut Vec<Rec>) {
    use vc_baselines::prelude::*;
    /// Timed batches per record; the fastest batch is reported.
    const REPS: u32 = 5;
    let mega = |workers: usize| {
        let mut cfg = EnvConfig::paper_default();
        cfg.size_x = 160.0;
        cfg.size_y = 160.0;
        cfg.grid = 16;
        cfg.num_workers = workers;
        cfg.num_pois = 20_000;
        cfg.num_stations = 64;
        cfg.horizon = 1_000_000; // episodes never end mid-measurement
        cfg.obstacles.clear();
        cfg.poi_distribution = PoiDistribution::Uniform;
        cfg.seed = 2020;
        cfg
    };
    for workers in [10usize, 100, 1000] {
        let mut env = CrowdsensingEnv::new(mega(workers));
        let mut sched = SweepScheduler::new();
        let mut rng = StdRng::seed_from_u64(7);
        let ns = time_ns_reps(iters, REPS, || {
            if env.done() {
                env.reset();
            }
            let actions = sched.decide(&env, &mut rng);
            env.step(std::hint::black_box(&actions));
        });
        out.push(Rec {
            op: "env_step",
            shape: format!("fleet w{workers} pois20000"),
            threads: 1,
            iters,
            ns_per_iter: ns,
            flops: 0.0,
        });
    }
    let mut env = CrowdsensingEnv::new(mega(1000));
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let net = FleetActorCritic::new(
        &mut store,
        NetConfig::for_scenario(env.config().grid, env.config().num_workers),
        &mut rng,
    );
    let opts = PolicyOptions::default();
    let ns = time_ns_reps(rollout_iters, REPS, || {
        if env.done() {
            env.reset();
        }
        let sampled = sample_action_fleet(&net, &store, &env, opts, &mut rng);
        env.step(std::hint::black_box(&sampled.actions));
    });
    out.push(Rec {
        op: "fleet_rollout",
        shape: "fleet w1000 pois20000".into(),
        threads: gemm::kernel_threads(),
        iters: rollout_iters,
        ns_per_iter: ns,
        flops: 0.0,
    });
}

/// Times the telemetry-off chief stress loop: 16 employees × `rounds`
/// gather rounds on a small map. This is the acceptance substrate for the
/// "disabled telemetry costs ≤ 2%" budget — the instrumented broadcast /
/// gather / apply path runs at full round rate with a `Telemetry::off`
/// handle, so regressions in the disabled-path overhead show up here.
fn bench_chief_stress(iters: u64, rounds: usize, out: &mut Vec<Rec>) {
    let employees = 16usize;
    let mut trainer = chief_stress_trainer(employees, rounds);
    let ns = time_ns(iters, || {
        trainer.train_episode().expect("chief stress episode failed");
    });
    out.push(Rec {
        op: "chief_stress",
        shape: format!("employees{employees} rounds{rounds}"),
        threads: employees,
        iters,
        ns_per_iter: ns,
        flops: 0.0,
    });
}

/// Comma-separated list of the CPU features the GEMM kernels care about,
/// as detected at run time (what the *host* has, independent of what the
/// binary was compiled for — the pair localizes "why did GFLOP/s move"
/// across heterogeneous bench hosts).
fn detected_target_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut feats = Vec::new();
        if std::arch::is_x86_feature_detected!("avx2") {
            feats.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            feats.push("fma");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            feats.push("avx512f");
        }
        if feats.is_empty() {
            "none".into()
        } else {
            feats.join(",")
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "non-x86".into()
    }
}

/// Validates one run record against the trajectory schema. Version-2 runs
/// additionally carry `target_features` / `simd_kernel`; earlier records in
/// the committed history must stay valid, so those keys are only required
/// when `schema_version >= 2`.
fn validate_run(run: &Value) -> Result<(), String> {
    for key in ["schema_version", "mode", "unix_time_s", "results"] {
        if run.get(key).is_none() {
            return Err(format!("run record missing `{key}`"));
        }
    }
    let version = run.get("schema_version").and_then(Value::as_u64).unwrap_or(0);
    if version >= 2 {
        for key in ["target_features", "simd_kernel"] {
            if run.get(key).and_then(Value::as_str).is_none() {
                return Err(format!("schema v{version} run record missing string `{key}`"));
            }
        }
    }
    let results = run
        .get("results")
        .and_then(Value::as_seq)
        .ok_or_else(|| "`results` must be an array".to_owned())?;
    if results.is_empty() {
        return Err("`results` must be non-empty".into());
    }
    for (i, rec) in results.iter().enumerate() {
        for key in ["op", "shape", "threads", "iters", "ns_per_iter", "gflops"] {
            if rec.get(key).is_none() {
                return Err(format!("result {i} missing `{key}`"));
            }
        }
        if rec.get("op").and_then(Value::as_str).is_none() {
            return Err(format!("result {i}: `op` must be a string"));
        }
    }
    Ok(())
}

/// Validates a whole trajectory file (array of run records).
fn validate_trajectory(text: &str) -> Result<usize, String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON: {e}"))?;
    let runs = v.as_seq().ok_or_else(|| "trajectory must be a JSON array of runs".to_owned())?;
    for run in runs {
        validate_run(run)?;
    }
    Ok(runs.len())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_kernels.json".to_owned());
    let iters: u64 = if smoke { 2 } else { 20 };

    let mut recs = Vec::new();
    // Matmuls always run at full iteration count — they are cheap, and the
    // smoke run's GFLOP/s feed the `xtask bench --smoke` regression gate,
    // which needs statistically meaningful numbers.
    bench_matmuls(20, &mut recs);
    bench_conv(iters, &mut recs);
    bench_rollout_step(if smoke { 2 } else { 10 }, &mut recs);
    bench_ppo_update(if smoke { 1 } else { 5 }, &mut recs);
    bench_episode(if smoke { 1 } else { 3 }, &mut recs);
    bench_env_step(if smoke { 50 } else { 2000 }, &mut recs);
    bench_fleet(if smoke { 20 } else { 500 }, if smoke { 2 } else { 10 }, &mut recs);
    bench_chief_stress(1, if smoke { 5 } else { 50 }, &mut recs);

    println!("{:<16} {:>24} {:>8} {:>14} {:>10}", "op", "shape", "threads", "ns/iter", "GFLOP/s");
    for r in &recs {
        let gflops =
            if r.ns_per_iter > 0.0 && r.flops > 0.0 { r.flops / r.ns_per_iter } else { 0.0 };
        println!(
            "{:<16} {:>24} {:>8} {:>14.0} {:>10.2}",
            r.op, r.shape, r.threads, r.ns_per_iter, gflops
        );
    }
    let naive = recs.iter().find(|r| r.op == "matmul_naive");
    let blocked = recs
        .iter()
        .find(|r| r.op == "matmul_blocked" && r.shape == "256x256x256" && r.threads == 1);
    if let (Some(nv), Some(bl)) = (naive, blocked) {
        println!("speedup matmul 256x256x256 (1 thread): {:.2}x", nv.ns_per_iter / bl.ns_per_iter);
    }

    // Append this run to the trajectory (tolerating a missing or corrupt
    // existing file — the trajectory restarts rather than blocking the run).
    let mut runs: Vec<Value> = std::fs::read_to_string(&out_path)
        .ok()
        .and_then(|t| serde_json::from_str::<Value>(&t).ok())
        .and_then(|v| v.as_seq().map(<[Value]>::to_vec))
        .unwrap_or_default();
    let unix_s = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let simd_kernel = if gemm::simd_kernel_active() { "avx2" } else { "scalar" };
    let run = Value::Map(vec![
        ("schema_version".into(), Value::UInt(2)),
        ("mode".into(), Value::Str(if smoke { "smoke" } else { "full" }.into())),
        ("unix_time_s".into(), Value::UInt(unix_s)),
        ("target_features".into(), Value::Str(detected_target_features())),
        ("simd_kernel".into(), Value::Str(simd_kernel.into())),
        ("results".into(), Value::Seq(recs.iter().map(Rec::to_value).collect())),
    ]);
    if let Err(e) = validate_run(&run) {
        eprintln!("bench_kernels: BUG: emitted run fails its own schema: {e}");
        std::process::exit(1);
    }
    runs.push(run);
    let text = serde_json::to_string_pretty(&Value::Seq(runs)).expect("serialize trajectory");
    std::fs::write(&out_path, &text).expect("write trajectory file");

    // Re-read and validate the artifact end to end, so schema drift fails
    // the bench (and CI) immediately.
    let reread = std::fs::read_to_string(&out_path).expect("re-read trajectory file");
    match validate_trajectory(&reread) {
        Ok(n) => println!("wrote {out_path}: {n} run(s), schema ok"),
        Err(e) => {
            eprintln!("bench_kernels: schema validation failed: {e}");
            std::process::exit(1);
        }
    }
}
