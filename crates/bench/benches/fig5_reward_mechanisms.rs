//! Fig. 5 as a benchmark: per-episode training cost of the four reward
//! mechanisms (dense/sparse × with/without curiosity). Complements
//! `vc-experiments fig5`, which regenerates the corresponding learning
//! curves.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drl_cews::prelude::*;
use std::hint::black_box;
use vc_bench::bench_env;
use vc_env::reward::RewardMode;

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5/train_episode_per_mechanism");
    group.sample_size(10);
    let mechanisms = [
        ("sparse+curiosity", RewardMode::Sparse, CuriosityChoice::paper_spatial()),
        ("sparse-only", RewardMode::Sparse, CuriosityChoice::None),
        ("dense+curiosity", RewardMode::Dense, CuriosityChoice::paper_spatial()),
        ("dense-only", RewardMode::Dense, CuriosityChoice::None),
    ];
    for (label, reward, curiosity) in mechanisms {
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &(reward, curiosity),
            |b, &(r, cur)| {
                let mut cfg = TrainerConfig::drl_cews(bench_env());
                cfg.num_employees = 1;
                cfg.ppo.epochs = 1;
                cfg.ppo.minibatch = 32;
                cfg.reward_mode = r;
                cfg.curiosity = cur;
                let mut trainer = Trainer::new(cfg).unwrap();
                b.iter(|| black_box(trainer.train_episode().unwrap()));
            },
        );
    }
    group.finish();
}

criterion_group!(fig5, bench_fig5);
criterion_main!(fig5);
