//! Figs. 6–8 as a benchmark: the per-episode cost of every compared
//! algorithm on the shared scenario — the compute dimension of the five-way
//! comparison whose quality dimension `vc-experiments fig678` regenerates.
//! Also sweeps the worker axis for the planners, reproducing the cost side
//! of Fig. x(b).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use vc_baselines::prelude::*;
use vc_bench::{bench_dppo, bench_env, bench_trainer};
use vc_env::prelude::*;

fn planner_episode(scheduler: &mut dyn Scheduler, env: &mut CrowdsensingEnv, rng: &mut StdRng) {
    env.reset();
    while !env.done() {
        let actions = scheduler.decide(env, rng);
        env.step(&actions);
    }
}

fn bench_trained_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig678/train_episode");
    group.sample_size(10);
    group.bench_function("drl-cews", |b| {
        let mut t = bench_trainer(1, 32);
        b.iter(|| black_box(t.train_episode().unwrap()));
    });
    group.bench_function("dppo", |b| {
        let mut t = bench_dppo(1, 32);
        b.iter(|| black_box(t.train_episode().unwrap()));
    });
    group.bench_function("edics", |b| {
        let env_cfg = bench_env();
        let mut edics = Edics::new(
            &env_cfg,
            EdicsConfig {
                ppo: vc_rl::ppo::PpoConfig { epochs: 1, minibatch: 32, ..Default::default() },
                seed: 1,
            },
        );
        let mut env = CrowdsensingEnv::new(env_cfg);
        b.iter(|| black_box(edics.train_episode(&mut env)));
    });
    group.finish();
}

fn bench_planners(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig678/planner_episode");
    group.sample_size(10);
    for &workers in &[1usize, 2, 5] {
        let mut cfg = bench_env();
        cfg.num_workers = workers;
        let mut env = CrowdsensingEnv::new(cfg);
        let mut rng = StdRng::seed_from_u64(3);
        group.bench_with_input(BenchmarkId::new("greedy", workers), &workers, |b, _| {
            b.iter(|| planner_episode(&mut GreedyScheduler, &mut env, &mut rng));
        });
        let mut env2 = env.clone();
        group.bench_with_input(BenchmarkId::new("d&c", workers), &workers, |b, _| {
            b.iter(|| planner_episode(&mut DncScheduler::default(), &mut env2, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(fig678, bench_trained_methods, bench_planners);
criterion_main!(fig678);
