//! Component micro-benchmarks: the building blocks whose cost dominates
//! every experiment (environment stepping, state encoding, network forward,
//! PPO gradient computation, curiosity reward, gradient-buffer reduction).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use vc_bench::bench_env;
use vc_curiosity::prelude::*;
use vc_env::prelude::*;
use vc_nn::prelude::*;
use vc_rl::prelude::*;

fn bench_env_step(c: &mut Criterion) {
    let cfg = bench_env();
    c.bench_function("env/step_2_workers", |b| {
        b.iter_batched(
            || CrowdsensingEnv::new(cfg.clone()),
            |mut env| {
                let actions = vec![WorkerAction::go(Move::East); env.workers().len()];
                black_box(env.step(&actions));
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_state_encode(c: &mut Criterion) {
    let env = CrowdsensingEnv::new(bench_env());
    c.bench_function("env/state_encode_16x16", |b| {
        b.iter(|| black_box(vc_env::state::encode(&env)));
    });
}

fn bench_net_forward(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut store = ParamStore::new();
    let net = ActorCritic::new(&mut store, NetConfig::for_scenario(16, 2), &mut rng);
    for batch in [1usize, 32] {
        let t = Tensor::zeros(&[batch, 3, 16, 16]);
        c.bench_function(&format!("net/forward_b{batch}"), |b| {
            b.iter(|| {
                let mut g = Graph::new();
                let s = g.leaf(t.clone());
                black_box(net.forward(&mut g, &store, s).value);
            });
        });
    }
}

fn bench_ppo_minibatch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let net = ActorCritic::new(&mut store, NetConfig::for_scenario(16, 2), &mut rng);
    let ppo = PpoConfig::default();
    let mut buffer = RolloutBuffer::new();
    for i in 0..64 {
        buffer.push(Transition {
            state: vec![0.1; 3 * 16 * 16],
            moves: vec![i % 9, (i + 3) % 9],
            charges: vec![0, 1],
            move_mask: vec![true; 18],
            charge_mask: vec![true; 4],
            logp: -4.0,
            reward: (i % 5) as f32 * 0.1,
            value: 0.0,
        });
    }
    finish_rollout(&mut buffer, &ppo, 0.0);
    let idx: Vec<usize> = (0..32).collect();
    c.bench_function("ppo/minibatch32_grads", |b| {
        b.iter(|| {
            store.zero_grads();
            black_box(compute_ppo_grads(&net, &mut store, &buffer, &idx, &ppo));
        });
    });
}

fn bench_curiosity_reward(c: &mut Criterion) {
    let cfg = SpatialCuriosityConfig::paper_default(16, 16.0, 16.0, 2);
    let mut cur = SpatialCuriosity::new(cfg);
    let positions = [Point::new(3.0, 4.0), Point::new(10.0, 12.0)];
    let next = [Point::new(4.0, 4.0), Point::new(10.0, 11.0)];
    let moves = [3usize, 5];
    c.bench_function("curiosity/spatial_intrinsic_reward", |b| {
        b.iter(|| {
            let r = cur.intrinsic_reward(&TransitionView {
                state: &[],
                next_state: &[],
                positions: &positions,
                next_positions: &next,
                moves: &moves,
            });
            cur.clear_buffer();
            black_box(r)
        });
    });
}

fn bench_gradient_buffer(c: &mut Criterion) {
    let grads = vec![0.5f32; 100_000];
    c.bench_function("chief/gradient_buffer_accumulate_100k", |b| {
        b.iter_batched(
            GradientBuffer::new,
            |buf| {
                buf.accumulate(&grads).unwrap();
                buf.accumulate(&grads).unwrap();
                black_box(buf.take())
            },
            BatchSize::SmallInput,
        );
    });
}

criterion_group!(
    name = components;
    config = Criterion::default().sample_size(20);
    targets = bench_env_step,
        bench_state_encode,
        bench_net_forward,
        bench_ppo_minibatch,
        bench_curiosity_reward,
        bench_gradient_buffer
);
criterion_main!(components);
