//! Fig. 2(c) as a benchmark: the cost of one policy-driven trajectory
//! episode with full per-slot position recording, plus the ASCII rendering
//! used by `vc-experiments fig2c`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use drl_cews::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;
use vc_bench::bench_env;
use vc_env::prelude::*;
use vc_rl::prelude::*;

fn bench_fig2c(c: &mut Criterion) {
    let env_cfg = bench_env();
    let mut cfg = TrainerConfig::drl_cews(env_cfg.clone());
    cfg.num_employees = 1;
    cfg.ppo.epochs = 1;
    cfg.ppo.minibatch = 16;
    let trainer = Trainer::new(cfg).unwrap();
    let opts = PolicyOptions { mode: SampleMode::Stochastic, mask_invalid: true };

    c.bench_function("fig2c/trajectory_episode", |b| {
        b.iter(|| {
            let mut env = CrowdsensingEnv::new(env_cfg.clone());
            let mut rng = StdRng::seed_from_u64(2);
            let mut traj = Trajectory::new(env_cfg.num_workers);
            traj.record(env.workers().iter().map(|w| w.pos));
            while !env.done() {
                let a = sample_action(trainer.net(), trainer.store(), &env, opts, &mut rng);
                env.step(&a.actions);
                traj.record(env.workers().iter().map(|w| w.pos));
            }
            black_box(traj.path_length(0))
        });
    });

    c.bench_function("fig2c/ascii_render", |b| {
        let mut traj = Trajectory::new(1);
        for i in 0..40 {
            traj.record(
                [Point::new((i % 16) as f32 + 0.5, (i / 4) as f32 % 16.0 + 0.5)].into_iter(),
            );
        }
        b.iter(|| black_box(traj.ascii(&env_cfg, 0).len()));
    });
}

criterion_group!(
    name = fig2c_bench;
    config = Criterion::default().sample_size(10);
    targets = bench_fig2c
);
criterion_main!(fig2c_bench);
