//! Fig. 4 as a benchmark: per-episode training cost of each curiosity
//! variant — the four spatial combinations plus RND. Complements
//! `vc-experiments fig4`, which regenerates the learning curves; together
//! they reproduce both axes of the paper's feature-selection argument
//! (effectiveness *and* cost, e.g. independent structures paying a
//! per-worker parameter multiple).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drl_cews::prelude::*;
use drl_cews::trainer::CuriosityChoice;
use std::hint::black_box;
use vc_bench::bench_env;
use vc_curiosity::prelude::{FeatureKind, StructureKind};

fn variant_trainer(choice: CuriosityChoice) -> Trainer {
    let mut cfg = TrainerConfig::drl_cews(bench_env());
    cfg.num_employees = 1;
    cfg.ppo.epochs = 1;
    cfg.ppo.minibatch = 32;
    cfg.curiosity = choice;
    Trainer::new(cfg).unwrap()
}

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4/train_episode_per_variant");
    group.sample_size(10);
    let variants = [
        CuriosityChoice::Spatial {
            feature: FeatureKind::Embedding,
            structure: StructureKind::Shared,
            eta: 0.3,
        },
        CuriosityChoice::Spatial {
            feature: FeatureKind::Direct,
            structure: StructureKind::Shared,
            eta: 0.3,
        },
        CuriosityChoice::Spatial {
            feature: FeatureKind::Embedding,
            structure: StructureKind::Independent,
            eta: 0.3,
        },
        CuriosityChoice::Spatial {
            feature: FeatureKind::Direct,
            structure: StructureKind::Independent,
            eta: 0.3,
        },
        CuriosityChoice::Rnd { eta: 0.3 },
    ];
    for choice in variants {
        group.bench_with_input(BenchmarkId::from_parameter(choice.label()), &choice, |b, &ch| {
            let mut trainer = variant_trainer(ch);
            b.iter(|| black_box(trainer.train_episode().unwrap()));
        });
    }
    group.finish();
}

criterion_group!(fig4, bench_fig4);
criterion_main!(fig4);
