//! Fig. 9 as a benchmark: the cost of one heat-map snapshot (an evaluation
//! rollout depositing the spatial curiosity value at every visited cell),
//! which is the unit of work behind `vc-experiments fig9`.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use drl_cews::experiments::{fig9, Scale};
use drl_cews::prelude::*;
use std::hint::black_box;

fn bench_fig9(c: &mut Criterion) {
    let scale = Scale::smoke();
    let (_, cfg) = fig9::configs(&scale).into_iter().next().unwrap();
    let env_cfg = cfg.env.clone();
    let trainer = Trainer::new(cfg).unwrap();
    c.bench_function("fig9/heatmap_snapshot", |b| {
        b.iter(|| black_box(fig9::snapshot(&trainer, &env_cfg, 0, 1).heatmap.total()));
    });
}

criterion_group!(
    name = fig9_bench;
    config = Criterion::default().sample_size(10);
    targets = bench_fig9
);
criterion_main!(fig9_bench);
