//! Fig. 3 as a benchmark: training time per episode vs the number of
//! employees at fixed batch size. The paper's observation — wall-clock grows
//! steeply with M under the synchronous chief (45.5% longer at 16 vs 8
//! employees on their box) — is reproduced here as the relative growth of
//! the per-episode benchmark times.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vc_bench::bench_trainer;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3/episode_time_vs_employees");
    group.sample_size(10);
    for &employees in &[1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(employees), &employees, |b, &m| {
            let mut trainer = bench_trainer(m, 32);
            b.iter(|| black_box(trainer.train_episode().unwrap()));
        });
    }
    group.finish();
}

criterion_group!(fig3, bench_fig3);
criterion_main!(fig3);
