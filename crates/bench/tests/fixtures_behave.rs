//! Integration checks on the benchmark fixtures: a bench that measures a
//! fixture doing the wrong amount of work produces confidently wrong
//! numbers, so the work content is pinned here.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use vc_bench::{bench_env, bench_trainer, chief_stress_trainer};

#[test]
fn chief_stress_performs_exactly_the_configured_rounds() {
    // The stress fixture's contract: one episode == `rounds` gather rounds.
    // If a refactor changed the epochs→rounds mapping, the chief-stress
    // bench would silently time a different workload.
    let mut t = chief_stress_trainer(4, 3);
    assert_eq!(t.rounds_trained(), 0);
    t.train_episode().unwrap();
    assert_eq!(t.rounds_trained(), 3, "one episode must run exactly `rounds` gather rounds");
    t.train_episode().unwrap();
    assert_eq!(t.rounds_trained(), 6);
}

#[test]
fn chief_stress_runs_with_telemetry_disabled() {
    // The ≤2% overhead budget is measured against a disabled handle; the
    // fixture must not accidentally ship an enabled one.
    let t = chief_stress_trainer(2, 1);
    assert!(!t.telemetry().is_on(), "stress fixture must run telemetry-off");
}

#[test]
fn bench_trainer_produces_finite_episodes() {
    assert!(bench_env().validate().is_ok());
    let mut t = bench_trainer(2, 16);
    let s = t.train_episode().unwrap();
    assert!(s.kappa.is_finite() && (0.0..=1.0).contains(&s.kappa));
}
